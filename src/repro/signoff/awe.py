"""RC-tree moments and AWE-style two-pole delay estimation.

Sign-off timers compute interconnect delay with moment-matching model
order reduction (AWE and its successors).  This module implements the
classical machinery for RC trees:

* the path-resistance formula for the first two moments of the impulse
  response at every node, and
* a stable two-pole fit from (m1, m2) with the Elmore value as the
  asymptotic fallback, giving the 50% step-response delay.

It backs the fast screening path of the golden evaluator and is tested
against the transient simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np


@dataclass
class RCTree:
    """An RC tree rooted at a driver node.

    Node 0 is the root (driver output).  Every other node has exactly
    one parent, reached through a resistor; every node carries a
    grounded capacitance (possibly zero).
    """

    parents: List[int] = field(default_factory=lambda: [-1])
    resistances: List[float] = field(default_factory=lambda: [0.0])
    capacitances: List[float] = field(default_factory=lambda: [0.0])

    def add_node(self, parent: int, resistance: float,
                 capacitance: float) -> int:
        """Attach a node below ``parent``; returns the new node index."""
        if not 0 <= parent < len(self.parents):
            raise ValueError(f"parent {parent} does not exist")
        if resistance <= 0:
            raise ValueError("resistance must be positive")
        if capacitance < 0:
            raise ValueError("capacitance must be non-negative")
        self.parents.append(parent)
        self.resistances.append(resistance)
        self.capacitances.append(capacitance)
        return len(self.parents) - 1

    def add_cap(self, node: int, capacitance: float) -> None:
        """Add extra grounded farads at an existing node."""
        self.capacitances[node] += capacitance

    @property
    def size(self) -> int:
        return len(self.parents)

    def children_order(self) -> Sequence[int]:
        """Indices in a parent-before-child order (construction order)."""
        return range(self.size)

    @classmethod
    def chain(cls, segment_resistances: Sequence[float],
              segment_capacitances: Sequence[float]) -> "RCTree":
        """A simple RC chain (pi-ladder collapsed to per-node caps)."""
        if len(segment_resistances) != len(segment_capacitances):
            raise ValueError("resistance/capacitance lists must align")
        tree = cls()
        node = 0
        for r, c in zip(segment_resistances, segment_capacitances):
            node = tree.add_node(node, r, c)
        return tree


def rc_tree_moments(tree: RCTree, driver_resistance: float = 0.0
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """First two moments (m1, m2) of the response at every node.

    Uses the shared-path-resistance formula:

    ``m1(i) = -sum_k R_ik * C_k`` and
    ``m2(i) = sum_k R_ik * C_k * (-m1(k))`` (reported positive here),

    where ``R_ik`` is the resistance shared by the root->i and root->k
    paths.  ``driver_resistance`` (ohms) is added in series at the
    root.

    Returns arrays of |m1| and m2 per node (positive conventions:
    ``m1`` is the Elmore delay).
    """
    n = tree.size
    # Path resistance from root to each node, including the driver.
    path_r = np.zeros(n)
    for node in tree.children_order():
        parent = tree.parents[node]
        if parent < 0:
            path_r[node] = driver_resistance
        else:
            path_r[node] = path_r[parent] + tree.resistances[node]

    caps = np.asarray(tree.capacitances)

    # Shared path resistance requires ancestor sets; with tree sizes in
    # the tens an O(n^2) ancestor walk is plenty fast and simple.
    ancestors: List[Dict[int, float]] = []
    for node in range(n):
        chain: Dict[int, float] = {}
        cursor = node
        while cursor >= 0:
            chain[cursor] = path_r[cursor]
            cursor = tree.parents[cursor]
        ancestors.append(chain)

    def shared_resistance(i: int, k: int) -> float:
        chain_i = ancestors[i]
        best = driver_resistance
        cursor = k
        while cursor >= 0:
            if cursor in chain_i:
                best = max(best, min(chain_i[cursor], path_r[cursor]))
                break
            cursor = tree.parents[cursor]
        return best

    m1 = np.zeros(n)
    for i in range(n):
        for k in range(n):
            if caps[k] != 0.0:
                m1[i] += shared_resistance(i, k) * caps[k]

    m2 = np.zeros(n)
    for i in range(n):
        for k in range(n):
            if caps[k] != 0.0:
                m2[i] += shared_resistance(i, k) * caps[k] * m1[k]

    return m1, m2


def elmore_delay(tree: RCTree, node: int,
                 driver_resistance: float = 0.0) -> float:
    """Elmore (first-moment) delay to ``node``, in seconds."""
    m1, _ = rc_tree_moments(tree, driver_resistance)
    return float(m1[node])


def two_pole_delay(m1: float, m2: float) -> float:
    """50% step-response delay from the first two moments.

    Fits the two-pole transfer function matched to (m1, m2) and finds
    its median.  When the moment ratio degenerates (m2 close to m1^2,
    i.e. a dominant single pole) the single-pole formula
    ``ln(2) * m1`` is returned.
    """
    if m1 <= 0:
        return 0.0
    if m2 <= 0:
        return math.log(2.0) * m1

    # Single dominant pole when m2 ~ m1^2: for a physical RC tree
    # m2/m1^2 <= 1 always (Cauchy-Schwarz over the pole residues), with
    # equality exactly in the one-pole limit — e.g. the degenerate
    # single-segment tree, one R driving one C.  The multi-pole case is
    # therefore ratio *below* 1, not above.
    ratio = m2 / (m1 * m1)
    if ratio >= 1.0 - 1e-9:
        return math.log(2.0) * m1

    # Two-pole fit: match b1 = m1, b2 = m1^2 - m2 of
    # H(s) = 1 / (1 + b1 s + b2 s^2).  ratio < 1 makes b2 positive;
    # the poles are real when b1^2 >= 4 b2, i.e. ratio > 3/4.
    b1 = m1
    b2 = m1 * m1 - m2

    disc = b1 * b1 - 4.0 * b2
    if disc <= 0:
        return 0.69 * m1
    sqrt_disc = math.sqrt(disc)
    p1 = (b1 - sqrt_disc) / (2.0 * b2)   # slower pole (smaller)
    p2 = (b1 + sqrt_disc) / (2.0 * b2)
    # Step response 1 - k1 e^{-p1 t} - k2 e^{-p2 t} with
    # k1 = p2/(p2-p1), k2 = -p1/(p2-p1).  Solve for the 50% point by
    # bisection between 0 and 3 Elmore delays.
    k1 = p2 / (p2 - p1)
    k2 = -p1 / (p2 - p1)

    def response(t: float) -> float:
        return 1.0 - k1 * math.exp(-p1 * t) - k2 * math.exp(-p2 * t)

    low, high = 0.0, 3.0 * m1
    while response(high) < 0.5:
        high *= 2.0
        if high > 1e3 * m1:  # pragma: no cover - defensive
            return math.log(2.0) * m1
    for _ in range(80):
        mid = 0.5 * (low + high)
        if response(mid) < 0.5:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def tree_delay(tree: RCTree, node: int,
               driver_resistance: float = 0.0) -> float:
    """Two-pole 50% delay (seconds) to ``node`` under a step at the
    root, driven through ``driver_resistance`` ohms."""
    m1, m2 = rc_tree_moments(tree, driver_resistance)
    return two_pole_delay(float(m1[node]), float(m2[node]))
