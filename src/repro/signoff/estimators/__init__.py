"""Pluggable Monte-Carlo estimators for within-die variation.

The classic flow burns one engine evaluation per draw; resolving a
3-sigma tail yield that way needs 10^5-10^6 golden simulations.  This
package supplies drop-in estimators that buy the same confidence
interval for far fewer golden evaluations, following the ISLE playbook
(importance sampling with a cheap proxy steering the draws) with the
closed-form model of PR 4 playing the stochastic-logical-effort role:

* ``"plain"`` — the historical unweighted estimator (the baseline);
* ``"importance"`` / ``"importance-sn"`` — model-guided mean shift
  with likelihood-ratio reweighting (:mod:`.importance`);
* ``"qmc"`` — scrambled-Sobol lanes through the kernel batch path
  (:mod:`.qmc`);
* ``"control-variate"`` — golden + model on common random numbers,
  corrected by the model's known expectation (:mod:`.control`).

All estimators honor the determinism contract of
:mod:`repro.signoff.variation`: per-draw task streams spawned from the
root seed, auxiliary streams from labeled families
(:func:`repro.runtime.spawn_labeled_sequences`), bit-identical results
for any ``workers`` count and across worker crashes.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.signoff.estimators import control, importance, plain, qmc
from repro.signoff.estimators.base import (
    CI_Z,
    EstimatedVariationResult,
    EstimationRequest,
    EstimatorReport,
    TailEstimate,
)

#: Estimator names accepted by :func:`monte_carlo_line_delay`.
ESTIMATORS = ("plain", "importance", "importance-sn", "qmc",
              "control-variate")

#: Estimators that need the closed-form model even on the golden
#: engine (for the steering pre-pass / the control variate).
MODEL_BACKED = ("importance", "importance-sn", "control-variate")

_RUNNERS: Dict[str, Callable[[EstimationRequest],
                             EstimatedVariationResult]] = {
    "plain": plain.run,
    "importance": importance.run,
    "importance-sn": importance.run_self_normalized,
    "qmc": qmc.run,
    "control-variate": control.run,
}


def get_estimator(name: str) -> Callable[[EstimationRequest],
                                         EstimatedVariationResult]:
    """The runner for an estimator name (raises on unknown names)."""
    try:
        return _RUNNERS[name]
    except KeyError:
        raise ValueError(
            f"unknown estimator {name!r}; expected one of "
            f"{ESTIMATORS}") from None


__all__ = [
    "CI_Z",
    "ESTIMATORS",
    "MODEL_BACKED",
    "EstimatedVariationResult",
    "EstimationRequest",
    "EstimatorReport",
    "TailEstimate",
    "get_estimator",
]
