"""The classic unweighted Monte-Carlo estimator.

Exactly the historical :func:`monte_carlo_line_delay` flow — stream 0
computes the nominal, streams 1..N the draws, on whichever engine was
requested — wrapped to return the extended result type.  The sample
vector is bit-identical to what the pre-estimator code produced, which
the equivalence tests rely on; the other estimators are judged against
this one.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.runtime import parallel_map, spawn_seed_sequences
from repro.signoff import variation as _variation
from repro.signoff.estimators.base import (
    EstimatedVariationResult,
    EstimationRequest,
    EstimatorReport,
)


def run(request: EstimationRequest) -> EstimatedVariationResult:
    """Plain Monte Carlo: one engine evaluation per draw, equal
    weights (delays in seconds)."""
    streams = spawn_seed_sequences(request.seed, request.samples + 1)
    nominal_variation = _variation.VariationModel(0.0, 0.0)
    if request.engine == "golden":
        nominal = _variation._sample_task(
            (request.line, request.input_slew, nominal_variation,
             streams[0]))
        tasks = [(request.line, request.input_slew, request.variation,
                  stream) for stream in streams[1:]]
        # The label puts the draw index in any TaskError, so one
        # diverging sample out of 10k names itself in the traceback.
        draws: List[float] = parallel_map(
            _variation._sample_task, tasks, workers=request.workers,
            label="variation.golden_draw")
    elif request.engine == "model":
        served = _variation._lut_monte_carlo(
            request.model, request.line, request.input_slew,
            request.variation, streams)
        if served is not None:
            nominal, draws = served
        else:
            nominal = _variation._model_sample_task(
                (request.model, request.line, request.input_slew,
                 nominal_variation, streams[0]))
            tasks = [(request.model, request.line,
                      request.input_slew, request.variation, stream)
                     for stream in streams[1:]]
            draws = parallel_map(_variation._model_sample_task, tasks,
                                 workers=request.workers,
                                 label="variation.model_draw")
    else:
        nominal, draws = _variation._kernel_monte_carlo(
            request.model, request.line, request.input_slew,
            request.variation, streams)
    values = np.asarray(draws)
    error = float(np.std(values, ddof=1) / np.sqrt(len(values)))
    golden = len(values) if request.engine == "golden" else 0
    report = EstimatorReport(
        estimator="plain",
        standard_error=error,
        ess=float(len(values)),
        golden_evals=golden,
        model_evals=0 if golden else len(values),
    )
    return EstimatedVariationResult(samples=tuple(draws),
                                    nominal_delay=nominal,
                                    report=report)
