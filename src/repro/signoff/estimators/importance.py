"""Importance sampling steered by the closed-form model.

The ISLE recipe (Bayrakci, Demir & Tasiran): a cheap proxy locates the
failure region, the expensive engine samples *there*, and
likelihood-ratio weights restore unbiasedness under the nominal
measure.  Here the proxy is the batched kernel engine (PR 4's
closed-form model): a pre-pass of ``prepass_samples`` kernel draws
finds the z-vectors whose model delay crosses the critical threshold
(``critical_delay``, or the model's own mean + 3 sigma when none is
given), and their centroid becomes the mean shift ``mu`` of the
sampling distribution.  The model only has to point in roughly the
right direction — any proxy error is absorbed by the weights, never
biasing the estimate, only costing a little variance.

Main pass: draw ``z`` from the per-draw task streams (the determinism
contract is untouched — same streams, any ``workers`` count), evaluate
the requested engine at ``z' = z + mu``, and weight each draw by

    ``w = phi(z') / phi(z' - mu) = exp(|mu|^2 / 2 - mu . z')``

Two estimators share the machinery: ``"importance"`` is the unbiased
likelihood-ratio form ``mean(w * y)``; ``"importance-sn"`` is the
self-normalized ratio ``sum(w * y) / sum(w)`` — slightly biased at
finite N but often lower-variance, with a delta-method standard
error.  Both report Kong's effective sample size
``(sum w)^2 / sum w^2``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.runtime import spawn_labeled_sequences, \
    spawn_seed_sequences
from repro.signoff.estimators import engines
from repro.signoff.estimators.base import (
    EstimatedVariationResult,
    EstimationRequest,
    EstimatorReport,
)

#: Fewest pre-pass tail points the shift may be estimated from; below
#: this the threshold exceedances are topped up with the worst draws.
MIN_TAIL_POINTS = 16


def shift_vector(request: EstimationRequest, engine_nominal: float
                 ) -> "Tuple[np.ndarray, float]":
    """The importance shift ``mu`` in z-space (sigmas, dimensionless)
    and the engine-space tail threshold it targets (seconds).

    A kernel-engine pre-pass on its own labeled stream family (so the
    per-draw task streams stay untouched) ranks ``prepass_samples``
    cheap draws against the critical threshold (``critical_delay``,
    or the model's pre-pass mean + 3 sigma); ``mu`` is the centroid
    of the exceeding z-vectors.

    The proxy is only *correlated* with the target engine, not equal:
    the closed-form model carries a systematic delay offset against
    the golden simulator, so an absolute golden-space threshold can
    land on the wrong side of the model's distribution.  The pre-pass
    therefore aligns the two scales by the nominal-delay gap —
    ``engine_nominal`` (seconds) is the requesting engine's nominal
    delay, and the selection happens at ``critical_delay +
    (model_nominal - engine_nominal)`` in model space.  Residual
    proxy error only costs variance, never bias: the weights are what
    keep the estimate honest.
    """
    if request.variation.drive_sigma == 0.0 \
            and request.variation.vth_sigma == 0.0:
        # Zero variation: delay is constant in z, nothing to steer.
        return (np.zeros(request.dimensions),
                request.critical_delay or 0.0)
    model_nominal = float(engines.evaluate_factors(
        "kernel", request.model, request.line, request.input_slew,
        engines.nominal_factors(request.stages), workers=1)[0])
    offset = model_nominal - engine_nominal
    root = spawn_labeled_sequences(request.seed, "mc.prepass", 1)[0]
    z = np.random.default_rng(root).standard_normal(
        (request.prepass_samples, request.dimensions))
    factors = engines.factor_matrix(z, request.variation,
                                    request.stages)
    delays = engines.evaluate_factors(
        "kernel", request.model, request.line, request.input_slew,
        factors, workers=1)
    if request.critical_delay is not None:
        threshold = request.critical_delay + offset
    else:
        threshold = float(np.mean(delays) + 3.0 * np.std(delays))
    exceeding = delays >= threshold
    if int(np.sum(exceeding)) < MIN_TAIL_POINTS:
        worst = np.argsort(delays)[-MIN_TAIL_POINTS:]
        exceeding = np.zeros(len(delays), dtype=bool)
        exceeding[worst] = True
    return z[exceeding].mean(axis=0), threshold - offset


def _weighted_run(request: EstimationRequest,
                  self_normalized: bool) -> EstimatedVariationResult:
    nominal = float(engines.evaluate_factors(
        request.engine, request.model, request.line,
        request.input_slew, engines.nominal_factors(request.stages),
        workers=1)[0])
    mu, threshold = shift_vector(request, nominal)
    streams = spawn_seed_sequences(request.seed, request.samples + 1)
    z = engines.standard_normal_rows(streams[1:], request.dimensions)
    shifted = z + mu
    weights = np.exp(0.5 * float(mu @ mu) - shifted @ mu)
    factors = engines.factor_matrix(shifted, request.variation,
                                    request.stages)
    y = engines.evaluate_factors(
        request.engine, request.model, request.line,
        request.input_slew, factors, workers=request.workers)

    draws = len(y)
    weight_sum = float(np.sum(weights))
    ess = weight_sum ** 2 / float(weights @ weights)
    if self_normalized:
        estimate = float(weights @ y) / weight_sum
        residual = weights * (y - estimate)
        error = float(np.sqrt(residual @ residual) / weight_sum)
        name = "importance-sn"
    else:
        terms = weights * y
        estimate = float(np.mean(terms))
        error = float(np.std(terms, ddof=1) / np.sqrt(draws))
        name = "importance"

    golden = draws if request.engine == "golden" else 0
    model_evals = request.prepass_samples + (0 if golden else draws)
    report = EstimatorReport(
        estimator=name,
        standard_error=error,
        ess=float(ess),
        golden_evals=golden,
        model_evals=model_evals,
        shift_norm=float(np.linalg.norm(mu)),
        critical_delay=threshold,
    )
    return EstimatedVariationResult(
        samples=tuple(float(v) for v in y),
        nominal_delay=nominal,
        estimate=estimate,
        weights=tuple(float(w) for w in weights),
        report=report)


def run(request: EstimationRequest) -> EstimatedVariationResult:
    """Unbiased likelihood-ratio importance sampling (seconds)."""
    return _weighted_run(request, self_normalized=False)


def run_self_normalized(request: EstimationRequest
                        ) -> EstimatedVariationResult:
    """Self-normalized importance sampling (seconds): the ratio
    estimator trades an O(1/N) bias for lower weight-noise variance."""
    return _weighted_run(request, self_normalized=True)
