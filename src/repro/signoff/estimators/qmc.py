"""Randomized quasi-Monte Carlo: scrambled-Sobol lanes.

A Sobol sequence covers z-space far more evenly than iid draws, so for
the smooth delay integrand the mean converges near O(1/N) instead of
O(1/sqrt(N)).  Determinism and error estimation both come from *lane*
structure: ``lanes`` independently scrambled Sobol sequences (Owen
scrambling, each keyed by its own labeled ``SeedSequence`` child via
:func:`repro.runtime.spawn_labeled_sequences`) each produce an
unbiased lane mean, the estimate is the average of the lane means, and
the standard error is their between-lane spread.  Every lane's points
are generated up front from its own seed, so the sample vector is
bit-identical for any ``workers`` count — the evaluation fan-out goes
through the same order-preserving ``parallel_map``/kernel batch as
every other estimator.

With ``lanes=1`` there is no between-lane spread to estimate, so the
run degenerates — by construction, bit-for-bit — to the plain
estimator on the requested engine.
"""

from __future__ import annotations

import math

import numpy as np

from repro.runtime import spawn_labeled_sequences
from repro.signoff.estimators import engines, plain
from repro.signoff.estimators.base import (
    EstimatedVariationResult,
    EstimationRequest,
    EstimatorReport,
)

#: Uniform draws are clipped into [EPS, 1 - EPS] before the inverse
#: normal CDF so a scrambled point landing on an interval edge cannot
#: map to an infinite z.
EPS = 1e-12


def _sobol_normal_rows(stream: np.random.SeedSequence,
                       exponent: int, dimensions: int) -> np.ndarray:
    """``2**exponent`` scrambled-Sobol standard-normal rows."""
    try:
        from scipy.special import ndtri
        from scipy.stats import qmc
    except ImportError as exc:  # pragma: no cover - scipy is a dep
        raise RuntimeError(
            "the 'qmc' estimator needs scipy (scipy.stats.qmc); "
            "install scipy or pick another estimator") from exc
    sobol = qmc.Sobol(d=dimensions, scramble=True,
                      seed=np.random.default_rng(stream))
    uniform = sobol.random_base2(exponent)
    return ndtri(np.clip(uniform, EPS, 1.0 - EPS))


def run(request: EstimationRequest) -> EstimatedVariationResult:
    """Scrambled-Sobol quasi-Monte Carlo mean delay (seconds).

    The requested ``samples`` are rounded up so each of the ``lanes``
    evaluates the same power-of-two point count (Sobol sequences lose
    their balance at non-power-of-two lengths); the report records the
    actual ``lanes x per_lane`` budget spent.
    """
    if request.lanes == 1:
        # One lane has no between-lane error estimate; the honest
        # degenerate case is the plain estimator itself.
        return plain.run(request)
    per_lane = max(2, math.ceil(request.samples / request.lanes))
    exponent = max(1, math.ceil(math.log2(per_lane)))
    per_lane = 2 ** exponent
    lane_streams = spawn_labeled_sequences(request.seed, "mc.qmc",
                                           request.lanes)
    z = np.vstack([
        _sobol_normal_rows(stream, exponent, request.dimensions)
        for stream in lane_streams])
    factors = engines.factor_matrix(z, request.variation,
                                    request.stages)
    y = engines.evaluate_factors(
        request.engine, request.model, request.line,
        request.input_slew, factors, workers=request.workers)
    nominal = float(engines.evaluate_factors(
        request.engine, request.model, request.line,
        request.input_slew, engines.nominal_factors(request.stages),
        workers=1)[0])

    lane_means = y.reshape(request.lanes, per_lane).mean(axis=1)
    estimate = float(np.mean(lane_means))
    error = float(np.std(lane_means, ddof=1)
                  / np.sqrt(request.lanes))
    draws = len(y)
    golden = draws if request.engine == "golden" else 0
    report = EstimatorReport(
        estimator="qmc",
        standard_error=error,
        ess=float(draws),
        golden_evals=golden,
        model_evals=0 if golden else draws,
        lanes=request.lanes,
        per_lane=per_lane,
    )
    return EstimatedVariationResult(
        samples=tuple(float(v) for v in y),
        nominal_delay=nominal,
        estimate=estimate,
        report=report)
