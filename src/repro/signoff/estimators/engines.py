"""Factor-matrix sampling shared by every variance-reduction estimator.

The estimators all work in *z-space*: a draw is a vector of
``4 * stages`` standard normals (per-stage nMOS drive, nMOS vth, pMOS
drive, pMOS vth — the scalar sampler's draw order), mapped to
multiplicative perturbation factors by :func:`factor_matrix` with
exactly the operation sequence of the ``"kernel"`` engine — multiply by
the tiled sigmas, add one, clip to physical ranges — so a zero-shift
factor matrix built from the task streams is bit-identical to what the
plain engines draw.  Working in z-space is what makes the estimators
composable: an importance shift is a vector addition, a likelihood
ratio is a Gaussian density ratio, and a Sobol lane is just another
source of z rows.

:func:`evaluate_factors` then evaluates a factor matrix on any engine:
one :func:`repro.kernels.variation.line_delay_batch` call for
``"kernel"``, an order-preserving :func:`repro.runtime.parallel_map`
over per-row tasks for ``"model"`` and ``"golden"``.  The golden rows
apply the factors through the same ``dataclasses.replace`` the
variation model itself performs, so a ones row reproduces the nominal
delay bit-for-bit and zero-shift rows reproduce the plain golden draws.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from repro.models.wire import effective_load_capacitance, wire_delay
from repro.runtime import METRICS, parallel_map
from repro.signoff import variation as _variation
from repro.signoff.extraction import ExtractedLine
from repro.signoff.golden import simulate_stage


def sigma_vector(variation: "_variation.VariationModel",
                 stages: int) -> np.ndarray:
    """The per-column sigmas of the factor matrix (dimensionless),
    tiled over ``stages`` in the scalar sampler's draw order."""
    return np.tile([variation.drive_sigma, variation.vth_sigma,
                    variation.drive_sigma, variation.vth_sigma],
                   stages)


def standard_normal_rows(streams: Sequence[np.random.SeedSequence],
                         dimensions: int) -> np.ndarray:
    """One row of ``dimensions`` standard normals per stream.

    Row ``i`` is exactly the draw sequence stream ``i``'s generator
    would emit scalar-by-scalar — the bit-compatibility the kernel
    engine's equivalence tests pin down.
    """
    rows = np.empty((len(streams), dimensions))
    for index, stream in enumerate(streams):
        rows[index] = np.random.default_rng(stream) \
            .standard_normal(dimensions)
    return rows


def factor_matrix(z: np.ndarray,
                  variation: "_variation.VariationModel",
                  stages: int,
                  shift: Optional[np.ndarray] = None,
                  nominal_first: bool = False) -> np.ndarray:
    """Map z rows to a clipped ``(rows, stages, 4)`` factor matrix.

    Replicates the ``"kernel"`` engine's operation order bit-for-bit:
    scale by the tiled sigmas, add 1.0, then clip drives to >= 0.5 and
    vth factors into [0.5, 1.5] (all factors dimensionless).  ``shift``
    (an importance-sampling mean shift in z-space) is added to ``z``
    *before* scaling, so a ``None``/zero shift changes nothing.  With
    ``nominal_first`` row 0 is forced to the all-ones nominal row
    after scaling, exactly as the kernel engine treats stream 0.
    """
    z = np.asarray(z, dtype=float)
    if shift is not None:
        z = z + shift
    factors = z * sigma_vector(variation, stages)
    factors += 1.0
    if nominal_first:
        factors[0] = 1.0
    factors = factors.reshape(z.shape[0], stages, 4)
    from repro.kernels.variation import clip_factor_matrix
    return clip_factor_matrix(factors)


def nominal_factors(stages: int) -> np.ndarray:
    """The single all-ones (nominal, factor == 1.0) row."""
    return np.ones((1, stages, 4))


def _golden_factor_task(task) -> float:
    """One golden evaluation of an explicit factor row (seconds).

    Applies each stage's four factors through the same
    ``dataclasses.replace`` that ``VariationModel.perturb_device``
    performs, then simulates the stage chain exactly like
    :func:`repro.signoff.variation.sample_line_delay` — same flow,
    factors supplied instead of drawn.
    """
    line, input_slew, row = task
    METRICS.count("variation.samples")
    with METRICS.timer("variation.sample"):
        factors = np.asarray(row)
        slew = input_slew
        rising = True
        total = 0.0
        for index, stage in enumerate(line.stages):
            n_drive, n_vth, p_drive, p_vth = factors[index]
            perturbed = dataclasses.replace(
                line.tech,
                nmos=dataclasses.replace(
                    line.tech.nmos,
                    k_sat=line.tech.nmos.k_sat * n_drive,
                    vth=line.tech.nmos.vth * n_vth),
                pmos=dataclasses.replace(
                    line.tech.pmos,
                    k_sat=line.tech.pmos.k_sat * p_drive,
                    vth=line.tech.pmos.vth * p_vth),
            )
            timing = simulate_stage(
                perturbed,
                stage.driver_size,
                stage.wire.resistance,
                stage.wire.total_cap(line.config.delay_miller),
                line.stage_load_cap(index),
                slew,
                rising,
            )
            total += timing.delay
            slew = timing.output_slew
            rising = not rising
        return total


def _model_factor_task(task) -> float:
    """One closed-form evaluation of an explicit factor row (seconds).

    The factor-driven mirror of
    ``repro.signoff.variation._model_sample_line_delay``: identical
    stage chain, factors supplied instead of drawn.
    """
    model, line, input_slew, row = task
    METRICS.count("variation.samples")
    with METRICS.timer("variation.sample"):
        factors = np.asarray(row)
        count, size = _variation._uniform_geometry(line)
        segment = line.length / count
        repeater = model.repeater_model()
        input_cap = repeater.input_capacitance(size)
        wn, wp = model.tech.inverter_widths(size)
        slew = input_slew
        rising = True
        total = 0.0
        inverting = model.calibration.kind.inverting
        for stage in range(count):
            n_drive, n_vth, p_drive, p_vth = factors[stage]
            next_cap = (input_cap if stage + 1 < count
                        else line.receiver_cap)
            load = effective_load_capacitance(model.config, segment,
                                              next_cap)
            d_wire = wire_delay(model.config, segment, next_cap)
            direction = model.calibration.direction(rising)
            if rising:
                device, width = model.tech.pmos, wp
                drive_factor, vth_factor = p_drive, p_vth
            else:
                device, width = model.tech.nmos, wn
                drive_factor, vth_factor = n_drive, n_vth
            wr = _variation._effective_width(
                device, width, model.tech.vdd, drive_factor,
                vth_factor)
            total += direction.delay(slew, wr, load) + d_wire
            slew = direction.output_slew(load, slew, wr)
            if inverting:
                rising = not rising
        return total


def evaluate_factors(
    engine: str,
    model,
    line: ExtractedLine,
    input_slew: float,
    factors: np.ndarray,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Line delay (seconds) of every factor row, on the chosen engine.

    ``"kernel"`` evaluates all rows in one batched call; ``"model"``
    and ``"golden"`` map the rows through :func:`parallel_map` under
    the engines' usual ``variation.*`` task labels, preserving the
    order and therefore the determinism contract for any ``workers``
    count.  ``input_slew`` is in seconds.
    """
    factors = np.asarray(factors, dtype=float)
    if engine == "kernel":
        from repro.kernels.variation import line_delay_batch
        count, size = _variation._uniform_geometry(line)
        METRICS.count("variation.samples", factors.shape[0])
        return np.asarray(line_delay_batch(
            _variation._closed_form_base(model), line.length, count,
            size, line.receiver_cap, input_slew, factors))
    if engine == "model":
        from repro.kernels.lut import (
            line_delay_first_order,
            serves_model,
        )
        if serves_model(model):
            response = model.mc_response(line, input_slew)
            if response is not None:
                nominal, weights = response
                METRICS.count("variation.samples", factors.shape[0])
                return np.asarray(line_delay_first_order(
                    nominal, weights, factors))
        tasks: List = [(model, line, input_slew, row)
                       for row in factors]
        delays = parallel_map(_model_factor_task, tasks,
                              workers=workers,
                              label="variation.model_draw")
    else:
        tasks = [(line, input_slew, row) for row in factors]
        delays = parallel_map(_golden_factor_task, tasks,
                              workers=workers,
                              label="variation.golden_draw")
    return np.asarray(delays)
