"""Control variates: correct the golden mean with the cheap model.

Evaluate the golden engine Y and the closed-form kernel X on *common
random numbers* (the very same factor rows), then exploit that X's
expectation is knowable to near-arbitrary precision from cheap kernel
draws alone:

    ``estimate = mean(Y) - beta * (mean(X) - E[X])``

Because ``E[mean(X) - E[X]] = 0``, the correction is unbiased for any
fixed ``beta``; ``beta = cov(X, Y) / var(X)`` (estimated online by
default) minimizes the variance, shrinking it by the squared
X-Y correlation — and PR 4's model tracks the golden simulator
closely, which is exactly the ISLE observation that a good proxy is
worth more as a variance reducer than as a replacement.

The reference expectation ``E[X]`` comes from ``prepass_samples``
kernel draws on a labeled stream family; its residual standard error
is folded into the reported error in quadrature.  When the *main*
engine is itself closed-form ("model"/"kernel"), X == Y would make the
correction degenerate, so the control variate is instead a linear
z-space surrogate fitted on the reference draws — its expectation is
the fit intercept, exactly (E[z] = 0).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.runtime import spawn_labeled_sequences, \
    spawn_seed_sequences
from repro.signoff.estimators import engines
from repro.signoff.estimators.base import (
    EstimatedVariationResult,
    EstimationRequest,
    EstimatorReport,
)


def _reference_draws(request: EstimationRequest
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """(z, kernel delays) of the labeled reference pre-pass."""
    root = spawn_labeled_sequences(request.seed, "mc.control", 1)[0]
    z = np.random.default_rng(root).standard_normal(
        (request.prepass_samples, request.dimensions))
    factors = engines.factor_matrix(z, request.variation,
                                    request.stages)
    delays = engines.evaluate_factors(
        "kernel", request.model, request.line, request.input_slew,
        factors, workers=1)
    return z, delays


def run(request: EstimationRequest) -> EstimatedVariationResult:
    """Control-variate corrected mean delay (seconds)."""
    streams = spawn_seed_sequences(request.seed, request.samples + 1)
    z = engines.standard_normal_rows(streams[1:], request.dimensions)
    factors = engines.factor_matrix(z, request.variation,
                                    request.stages)
    y = engines.evaluate_factors(
        request.engine, request.model, request.line,
        request.input_slew, factors, workers=request.workers)
    nominal = float(engines.evaluate_factors(
        request.engine, request.model, request.line,
        request.input_slew, engines.nominal_factors(request.stages),
        workers=1)[0])

    z_ref, x_ref = _reference_draws(request)
    draws = len(y)
    if request.engine == "golden":
        # The control is the kernel engine on the same factor rows.
        x = engines.evaluate_factors(
            "kernel", request.model, request.line, request.input_slew,
            factors, workers=1)
        control_mean = float(np.mean(x_ref))
        control_error = float(np.std(x_ref, ddof=1)
                              / np.sqrt(len(x_ref)))
        model_evals = request.prepass_samples + draws
        golden = draws
    else:
        # Closed-form main engine: X == Y would degenerate, so use a
        # linear z-space surrogate whose expectation is exact.
        design = np.column_stack([np.ones(len(z_ref)), z_ref])
        coefficients = np.linalg.lstsq(design, x_ref, rcond=None)[0]
        x = coefficients[0] + z @ coefficients[1:]
        control_mean = float(coefficients[0])
        control_error = 0.0
        model_evals = request.prepass_samples + draws
        golden = 0

    if request.beta is not None:
        beta = request.beta
    else:
        variance = float(np.var(x, ddof=1))
        if variance > 0.0:
            beta = float(np.cov(x, y, ddof=1)[0, 1] / variance)
        else:
            beta = 0.0

    estimate = float(np.mean(y)
                     - beta * (np.mean(x) - control_mean))
    residual = y - beta * x
    error = float(np.sqrt(np.var(residual, ddof=1) / draws
                          + (beta * control_error) ** 2))
    y_variance = float(np.var(y, ddof=1))
    residual_variance = float(np.var(residual, ddof=1))
    reduction = (y_variance / residual_variance
                 if residual_variance > 0.0 else 1.0)
    report = EstimatorReport(
        estimator="control-variate",
        standard_error=error,
        ess=float(draws),
        golden_evals=golden,
        model_evals=model_evals,
        beta=float(beta),
        control_mean=control_mean,
        variance_reduction=float(reduction),
    )
    return EstimatedVariationResult(
        samples=tuple(float(v) for v in y),
        nominal_delay=nominal,
        estimate=estimate,
        report=report)
