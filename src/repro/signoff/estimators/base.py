"""Shared request/result types of the pluggable Monte-Carlo estimators.

Every estimator is a callable ``run(request) -> EstimatedVariationResult``
where :class:`EstimationRequest` bundles the full sampling problem
(line, slew, draw count, variation magnitudes, seed, engine, model,
estimator knobs).  The result subclasses the classic
:class:`repro.signoff.variation.VariationResult`, so every consumer of
the plain Monte-Carlo flow keeps working, and adds the statistical
bookkeeping variance reduction needs: the (possibly weighted) point
estimate, the likelihood-ratio weights, and an
:class:`EstimatorReport` carrying the standard error, the effective
sample size and the evaluation budget actually spent per engine.

Accounting convention: ``golden_evals``/``model_evals`` count the
Monte-Carlo *draw* evaluations an estimator spent on each engine.  The
single nominal-delay evaluation is excluded — every estimator pays
exactly one, so including it would only blur budget comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.signoff.extraction import ExtractedLine
from repro.signoff.variation import VariationModel, VariationResult

#: z of the two-sided 95% confidence interval, used for CI half-widths.
CI_Z = 1.96


@dataclass(frozen=True)
class EstimationRequest:
    """One Monte-Carlo estimation problem, estimator-agnostic.

    ``input_slew``, ``critical_delay`` and ``target_ci`` are in
    seconds; ``samples``, ``lanes`` and ``prepass_samples`` are counts;
    ``beta`` is the dimensionless control-variate coefficient (``None``
    = estimate it online).
    """

    line: ExtractedLine
    input_slew: float
    samples: int
    variation: VariationModel
    seed: int
    workers: Optional[int]
    engine: str
    model: object = None
    critical_delay: Optional[float] = None
    lanes: int = 8
    beta: Optional[float] = None
    prepass_samples: int = 4096

    @property
    def stages(self) -> int:
        """Number of repeater stages in the line (count)."""
        return len(self.line.stages)

    @property
    def dimensions(self) -> int:
        """Dimension of the z-space sampled per draw (count): four
        perturbation factors per stage."""
        return 4 * self.stages


@dataclass(frozen=True)
class EstimatorReport:
    """Statistical bookkeeping of one estimator run.

    ``standard_error`` is in seconds (the error of the mean-delay
    estimate); ``ess`` is the effective sample size (count-valued,
    fractional); ``golden_evals``/``model_evals`` count engine draw
    evaluations; ``beta`` and ``variance_reduction`` are
    dimensionless; ``shift_norm`` is the Euclidean norm of the
    importance shift in z-space (sigmas); ``control_mean`` is the
    control variate's known expectation in seconds;
    ``critical_delay`` (seconds) is the tail threshold the estimator
    actually targeted (0.0 when the estimator targets none).
    """

    estimator: str
    standard_error: float
    ess: float
    golden_evals: int
    model_evals: int
    lanes: int = 0
    per_lane: int = 0
    beta: float = 0.0
    shift_norm: float = 0.0
    control_mean: float = 0.0
    variance_reduction: float = 1.0
    critical_delay: float = 0.0

    def format(self) -> str:
        parts = [f"estimator {self.estimator}: se "
                 f"{self.standard_error * 1e12:.3f} ps, ess "
                 f"{self.ess:.1f}, evals golden={self.golden_evals} "
                 f"model={self.model_evals}"]
        if self.lanes:
            parts.append(f"{self.lanes} lanes x {self.per_lane}")
        if self.shift_norm:
            parts.append(f"shift {self.shift_norm:.2f} sigma")
        if self.estimator.startswith("control"):
            parts.append(f"beta {self.beta:.3f}, variance /"
                         f"{self.variance_reduction:.1f}")
        return ", ".join(parts)


@dataclass(frozen=True)
class TailEstimate:
    """One tail-yield estimate: P(delay > threshold).

    ``threshold`` is in seconds; ``probability`` and
    ``standard_error`` are probabilities (dimensionless); ``draws``
    and ``golden_evals`` are counts.
    """

    threshold: float
    probability: float
    standard_error: float
    draws: int
    golden_evals: int

    @property
    def ci_half_width(self) -> float:
        """Half-width of the 95% confidence interval on the tail
        probability (dimensionless)."""
        return CI_Z * self.standard_error

    @property
    def plain_equivalent_evals(self) -> float:
        """Plain Monte-Carlo draws (count) needed for the same
        standard error: a binomial estimate of probability ``p`` needs
        ``p * (1 - p) / se**2`` draws to match ``se``."""
        if self.standard_error <= 0.0:
            return float("inf") if self.probability > 0.0 else 0.0
        p = min(max(self.probability, 0.0), 1.0)
        return p * (1.0 - p) / self.standard_error ** 2

    def format(self) -> str:
        return (f"P(delay > {self.threshold * 1e12:.1f} ps) = "
                f"{self.probability:.2e} +/- {self.ci_half_width:.2e} "
                f"(95% CI) from {self.golden_evals or self.draws} "
                f"evals; plain MC would need "
                f"{self.plain_equivalent_evals:.0f}")


@dataclass(frozen=True)
class EstimatedVariationResult(VariationResult):
    """A :class:`VariationResult` with estimator bookkeeping.

    ``samples`` still holds the raw engine evaluations (seconds) — for
    importance sampling those are draws under the *shifted* measure,
    so the inherited ``sigma`` describes the sampling distribution,
    not the nominal one.  ``estimate`` (seconds) is the estimator's
    corrected mean; when set it overrides the unweighted ``mean``.
    ``weights`` are the likelihood ratios (dimensionless, one per
    sample) when the estimator reweights.
    """

    estimate: Optional[float] = None
    weights: Optional[Tuple[float, ...]] = None
    report: Optional[EstimatorReport] = None

    @property
    def mean(self) -> float:
        """Estimated mean delay in seconds: the estimator's corrected
        estimate when one is recorded, the plain sample mean
        otherwise."""
        if self.estimate is not None:
            return self.estimate
        return float(np.mean(self.samples))

    @property
    def standard_error(self) -> float:
        """Standard error of the mean estimate, in seconds."""
        if self.report is not None:
            return self.report.standard_error
        draws = np.asarray(self.samples)
        return float(np.std(draws, ddof=1) / np.sqrt(len(draws)))

    @property
    def ess(self) -> float:
        """Effective sample size (count; equals ``len(samples)`` for
        unweighted estimators, Kong's ``(sum w)^2 / sum w^2`` for
        weighted ones)."""
        if self.report is not None:
            return self.report.ess
        return float(len(self.samples))

    def tail_probability(self, threshold: float) -> TailEstimate:
        """Estimate P(delay > ``threshold`` seconds) from this run.

        Importance-sampled runs use the likelihood-ratio form
        ``mean(w * 1{y > t})`` — the whole point of shifting toward
        the failure region is that this indicator mean resolves rare
        tails from few draws.  Lane-structured (QMC) runs use the
        between-lane spread of the per-lane tail fractions.  Plain
        runs fall back to the binomial estimate.
        """
        y = np.asarray(self.samples)
        indicator = (y > threshold).astype(float)
        draws = len(y)
        golden = self.report.golden_evals if self.report else 0
        if self.weights is not None:
            w = np.asarray(self.weights)
            terms = w * indicator
            probability = float(np.mean(terms))
            error = float(np.std(terms, ddof=1) / np.sqrt(draws))
        elif self.report is not None and self.report.lanes > 1:
            lanes = self.report.lanes
            lane_p = indicator.reshape(lanes, -1).mean(axis=1)
            probability = float(np.mean(lane_p))
            error = float(np.std(lane_p, ddof=1) / np.sqrt(lanes))
        else:
            probability = float(np.mean(indicator))
            error = float(np.sqrt(probability * (1.0 - probability)
                                  / draws))
        return TailEstimate(threshold=threshold,
                            probability=probability,
                            standard_error=error,
                            draws=draws,
                            golden_evals=golden)
