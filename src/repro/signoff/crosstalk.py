"""Explicit coupled-line crosstalk simulation.

The golden evaluator in :mod:`repro.signoff.golden` folds lateral
capacitance into grounded capacitors scaled by a Miller factor — the
standard sign-off abstraction.  This module provides the stronger
reference that abstraction is judged against: a *three-line* simulation
with the victim's two aggressor neighbours modelled explicitly as their
own driven RC lines, coupled to the victim through true inter-wire
capacitors.

Supported aggressor activities:

* ``OPPOSITE``  — both aggressors switch against the victim (the
  worst-case scenario the Miller factor ~1.9-2 approximates);
* ``QUIET``     — aggressors held at a rail (Miller factor ~1);
* ``SAME``      — aggressors switch with the victim (best case,
  Miller factor ~0 — what staggered insertion engineers).

The validation experiment: the Miller-grounded golden delay should sit
within a few percent of the explicit three-line simulation for the
matching activity, and the explicit worst/best-case delays must bracket
it.  ``tests/signoff/test_crosstalk.py`` and the crosstalk ablation
benchmark run exactly that check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.spice.elements import ramp
from repro.spice.netlist import Circuit
from repro.spice.transient import simulate_transient
from repro.tech.parameters import TechnologyParameters

#: RC sections per wire in the coupled simulation.
COUPLED_SEGMENTS = 8


class AggressorActivity(enum.Enum):
    """What the neighbour wires do during the victim transition."""

    OPPOSITE = "opposite"
    QUIET = "quiet"
    SAME = "same"


@dataclass(frozen=True)
class CoupledStageResult:
    """Timing of one victim stage under explicit aggressors."""

    delay: float
    output_slew: float
    activity: AggressorActivity


def _add_coupled_ladders(
    circuit: Circuit,
    wire_resistance: float,
    ground_cap: float,
    coupling_cap: float,
) -> None:
    """Three parallel RC ladders with explicit inter-wire capacitors.

    Wires are named ``v`` (victim), ``a1`` and ``a2`` (aggressors); the
    driver outputs are ``v_drv``/``a1_drv``/``a2_drv`` and the far ends
    ``v_out``/``a1_out``/``a2_out``.  ``coupling_cap`` is the victim's
    *total* lateral capacitance (both sides), split evenly per side and
    per segment.
    """
    per_side = 0.5 * coupling_cap
    r_seg = wire_resistance / COUPLED_SEGMENTS
    cg_seg = ground_cap / COUPLED_SEGMENTS
    cc_seg = per_side / COUPLED_SEGMENTS

    def node_name(wire: str, index: int) -> str:
        if index == 0:
            return f"{wire}_drv"
        if index == COUPLED_SEGMENTS:
            return f"{wire}_out"
        return f"{wire}_n{index}"

    for wire in ("v", "a1", "a2"):
        for index in range(COUPLED_SEGMENTS):
            a = node_name(wire, index)
            b = node_name(wire, index + 1)
            circuit.add_capacitor(a, "0", 0.5 * cg_seg)
            circuit.add_resistor(a, b, r_seg)
            circuit.add_capacitor(b, "0", 0.5 * cg_seg)
    # Inter-wire coupling at matching positions along the lines.
    for index in range(1, COUPLED_SEGMENTS + 1):
        victim = node_name("v", index)
        circuit.add_capacitor(victim, node_name("a1", index), cc_seg)
        circuit.add_capacitor(victim, node_name("a2", index), cc_seg)


def simulate_coupled_stage(
    tech: TechnologyParameters,
    driver_size: float,
    wire_resistance: float,
    ground_cap: float,
    coupling_cap: float,
    load_cap: float,
    input_slew: float,
    rising_input: bool,
    activity: AggressorActivity,
    max_retries: int = 3,
) -> CoupledStageResult:
    """One repeater stage with both neighbours simulated explicitly.

    All three lines get identical drivers and loads; the aggressors'
    inputs ramp according to ``activity``, aligned with the victim's
    input transition (the worst-case alignment for OPPOSITE).
    """
    vdd = tech.vdd
    wn, wp = tech.inverter_widths(driver_size)
    circuit = Circuit("coupled_stage")
    circuit.add_supply("vdd", vdd)

    start = 0.1 * input_slew + 1e-12
    if rising_input:
        victim_source = ramp(0.0, vdd, start, input_slew)
    else:
        victim_source = ramp(vdd, 0.0, start, input_slew)
    circuit.add_voltage_source("v_in", victim_source)

    if activity is AggressorActivity.OPPOSITE:
        aggressor_source = (ramp(vdd, 0.0, start, input_slew)
                            if rising_input
                            else ramp(0.0, vdd, start, input_slew))
    elif activity is AggressorActivity.SAME:
        aggressor_source = victim_source
    else:  # QUIET: hold the input so the aggressor outputs stay still.
        level = 0.0 if rising_input else vdd
        aggressor_source = ramp(level, level, start, input_slew)
    circuit.add_voltage_source("a1_in", aggressor_source)
    circuit.add_voltage_source("a2_in", aggressor_source)

    for wire in ("v", "a1", "a2"):
        circuit.add_inverter(f"{wire}_in", f"{wire}_drv", "vdd",
                             tech.nmos, tech.pmos, wn, wp, vdd)
        circuit.add_capacitor(f"{wire}_out", "0", load_cap)
    _add_coupled_ladders(circuit, wire_resistance, ground_cap,
                         coupling_cap)

    overdrive = max(vdd - tech.nmos.vth, 0.2 * vdd)
    drive_resistance = vdd / (
        tech.nmos.k_sat * wn * overdrive**tech.nmos.alpha)
    elmore = (drive_resistance
              * (ground_cap + 2.0 * coupling_cap + load_cap)
              + wire_resistance * (0.5 * ground_cap + load_cap))
    stop_time = start + input_slew + 10.0 * elmore + 20e-12

    target = 0.0 if rising_input else vdd
    for _attempt in range(max_retries + 1):
        result = simulate_transient(circuit, stop_time,
                                    record=["v_in", "v_out"])
        out_wave = result.waveform("v_out")
        if out_wave.settled(target, 0.02 * vdd):
            break
        stop_time *= 2.0
    else:  # pragma: no cover - defensive
        raise RuntimeError("coupled stage simulation never settled")

    in_wave = result.waveform("v_in")
    delay = (out_wave.midpoint_time(0.0, vdd)
             - in_wave.midpoint_time(0.0, vdd))
    return CoupledStageResult(
        delay=delay,
        output_slew=out_wave.slew(0.0, vdd),
        activity=activity,
    )


def crosstalk_delay_bracket(
    tech: TechnologyParameters,
    driver_size: float,
    wire_resistance: float,
    ground_cap: float,
    coupling_cap: float,
    load_cap: float,
    input_slew: float,
) -> Tuple[CoupledStageResult, CoupledStageResult, CoupledStageResult]:
    """(best, quiet, worst) explicit-aggressor delays for one stage.

    ``driver_size`` is a dimensionless multiple of the minimum
    inverter; resistances are ohms, capacitances farads, and
    ``input_slew`` seconds.
    """
    common = (tech, driver_size, wire_resistance, ground_cap,
              coupling_cap, load_cap, input_slew, True)
    best = simulate_coupled_stage(*common, AggressorActivity.SAME)
    quiet = simulate_coupled_stage(*common, AggressorActivity.QUIET)
    worst = simulate_coupled_stage(*common, AggressorActivity.OPPOSITE)
    return best, quiet, worst


def effective_miller_factor(
    quiet_delay: float,
    scenario_delay: float,
    worst_delay: float,
) -> float:
    """Back out the Miller factor a scenario corresponds to.

    Interpolates the scenario delay between the quiet (factor 1) and
    worst-case two-sided (factor ~2) anchors; staggered/same-direction
    switching lands near 0.  Used by the crosstalk validation to check
    that the configured Miller constants are physically placed.
    """
    span = worst_delay - quiet_delay
    if span <= 0:
        raise ValueError("worst-case delay must exceed quiet delay")
    return 1.0 + (scenario_delay - quiet_delay) / span
