"""Golden buffered-line evaluation by nonlinear transient simulation.

This is the reference against which Table II measures model accuracy —
the role PrimeTime SI plays in the paper.  A buffered line is evaluated
stage by stage, the way a sign-off timer propagates timing:

1. The first repeater's input sees an ideal ramp with the requested
   input slew.
2. Each stage — a CMOS repeater driving its distributed-RC wire segment
   (lateral coupling folded in at the configured Miller factor) loaded
   by the next repeater's gate capacitance — is simulated with the full
   nonlinear device model.
3. The measured 50%–50% stage delay accumulates, and the slew measured
   at the far end of the wire becomes the next stage's input slew.
   Signal polarity alternates through the inverter chain.

Uniform lines converge to a periodic steady state after a few stages
(the slew entering stage ``k`` equals the slew that entered stage
``k - 2``), so once two consecutive same-parity stages agree the
remaining stage delays are reused instead of re-simulated.  The paper's
15 mm lines have tens of repeaters; this shortcut makes the golden
evaluation tractable without changing its result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.signoff.extraction import ExtractedLine
from repro.spice.netlist import Circuit
from repro.spice.elements import ramp
from repro.spice.transient import simulate_transient
from repro.tech.parameters import TechnologyParameters

#: Lumped RC sections per wire segment.  Eight sections keep the
#: distributed-line error well under 1%.
SEGMENTS_PER_WIRE = 8

#: Relative slew change below which the stage cascade is declared
#: periodic.
SLEW_CONVERGENCE = 0.01


@dataclass(frozen=True)
class StageTiming:
    """Measured timing of one repeater stage."""

    delay: float
    output_slew: float
    input_slew: float
    rising_input: bool


@dataclass(frozen=True)
class GoldenResult:
    """Golden evaluation of a full buffered line."""

    total_delay: float
    output_slew: float
    stage_timings: Tuple[StageTiming, ...]
    runtime_seconds: float

    @property
    def num_stages(self) -> int:
        return len(self.stage_timings)


def _build_stage_circuit(
    tech: TechnologyParameters,
    driver_size: float,
    wire_resistance: float,
    wire_capacitance: float,
    load_cap: float,
    input_slew: float,
    rising_input: bool,
) -> Tuple[Circuit, float]:
    """One repeater stage driving its wire; returns (circuit, stop time)."""
    wn, wp = tech.inverter_widths(driver_size)
    vdd = tech.vdd

    circuit = Circuit("stage")
    circuit.add_supply("vdd", vdd)
    start = 0.1 * input_slew + 1e-12
    if rising_input:
        source = ramp(0.0, vdd, start, input_slew)
    else:
        source = ramp(vdd, 0.0, start, input_slew)
    circuit.add_voltage_source("in", source)
    circuit.add_inverter("in", "drv", "vdd", tech.nmos, tech.pmos,
                         wn, wp, vdd)
    circuit.add_rc_ladder("drv", "out", wire_resistance, wire_capacitance,
                          SEGMENTS_PER_WIRE)
    circuit.add_capacitor("out", "0", load_cap)

    # Stop-time estimate: input ramp plus a few Elmore delays of the
    # loaded stage, with generous margin.
    overdrive = max(vdd - tech.nmos.vth, 0.2 * vdd)
    drive_resistance = vdd / (tech.nmos.k_sat * wn * overdrive**tech.nmos.alpha)
    elmore = (drive_resistance * (wire_capacitance + load_cap)
              + wire_resistance * (0.5 * wire_capacitance + load_cap))
    stop_time = start + input_slew + 8.0 * elmore + 20e-12
    return circuit, stop_time


def simulate_stage(
    tech: TechnologyParameters,
    driver_size: float,
    wire_resistance: float,
    wire_capacitance: float,
    load_cap: float,
    input_slew: float,
    rising_input: bool,
    max_retries: int = 3,
) -> StageTiming:
    """Simulate one stage and measure its 50% delay and output slew.

    ``driver_size`` is a dimensionless multiple of the minimum
    inverter; the wire parasitics are ohms and farads and
    ``input_slew`` seconds.  Retries with a longer stop time if the
    output has not settled —
    the stop-time estimate is heuristic and long resistive wires can
    exceed it.
    """
    circuit, stop_time = _build_stage_circuit(
        tech, driver_size, wire_resistance, wire_capacitance, load_cap,
        input_slew, rising_input)
    vdd = tech.vdd
    target = 0.0 if rising_input else vdd  # inverter output rail

    for attempt in range(max_retries + 1):
        result = simulate_transient(circuit, stop_time,
                                    record=["in", "out"])
        out_wave = result.waveform("out")
        if out_wave.settled(target, 0.02 * vdd):
            break
        stop_time *= 2.0
    else:  # pragma: no cover - defensive
        raise RuntimeError("stage simulation never settled")

    in_wave = result.waveform("in")
    t_in = in_wave.midpoint_time(0.0, vdd)
    t_out = out_wave.midpoint_time(0.0, vdd)
    output_slew = out_wave.slew(0.0, vdd)
    return StageTiming(
        delay=t_out - t_in,
        output_slew=output_slew,
        input_slew=input_slew,
        rising_input=rising_input,
    )


def evaluate_buffered_line(
    line: ExtractedLine,
    input_slew: float,
    miller_factor: Optional[float] = None,
    use_periodicity: bool = True,
) -> GoldenResult:
    """Golden delay/slew of a buffered line (the Table II reference).

    Parameters
    ----------
    line:
        Extracted parasitics from
        :func:`~repro.signoff.extraction.extract_buffered_line`.
    input_slew:
        Transition time of the ramp at the first repeater input, in
        seconds (the paper uses 300 ps).
    miller_factor:
        Coupling amplification for the assumed neighbour switching;
        defaults to the line's wire-configuration delay Miller factor.
    use_periodicity:
        Reuse converged same-parity stage results on uniform lines.
    """
    if miller_factor is None:
        miller_factor = line.config.delay_miller

    started = time.perf_counter()
    timings: List[StageTiming] = []
    slew = input_slew
    rising = True
    # Per-parity memo of (input slew, timing) for periodicity reuse.
    parity_memo: "dict[int, StageTiming]" = {}
    converged_cycle: Optional[Tuple[StageTiming, StageTiming]] = None

    stage_count = line.num_repeaters
    for index in range(stage_count):
        stage = line.stages[index]
        # The periodic shortcut only applies to interior stages of a
        # uniform line (the last stage drives the receiver, whose load
        # can differ from a repeater's).
        reusable = (converged_cycle is not None
                    and index < stage_count - 1
                    and index > 0
                    and stage == line.stages[index - 1])
        if reusable:
            cycle_timing = converged_cycle[index % 2]
            timing = StageTiming(
                delay=cycle_timing.delay,
                output_slew=cycle_timing.output_slew,
                input_slew=slew,
                rising_input=rising,
            )
        else:
            timing = simulate_stage(
                line.tech,
                stage.driver_size,
                stage.wire.resistance,
                stage.wire.total_cap(miller_factor),
                line.stage_load_cap(index),
                slew,
                rising,
            )
            if use_periodicity:
                parity = index % 2
                previous = parity_memo.get(parity)
                if (previous is not None
                        and abs(previous.input_slew - slew)
                        <= SLEW_CONVERGENCE * max(slew, 1e-15)):
                    other = parity_memo.get(1 - parity)
                    if other is not None:
                        converged_cycle = ((timing, other) if parity == 0
                                           else (other, timing))
                parity_memo[parity] = timing
        timings.append(timing)
        slew = timing.output_slew
        rising = not rising

    runtime = time.perf_counter() - started
    return GoldenResult(
        total_delay=sum(t.delay for t in timings),
        output_slew=timings[-1].output_slew,
        stage_timings=tuple(timings),
        runtime_seconds=runtime,
    )
