"""SPEF-like parasitic exchange: writer and reader.

The validation flow in the paper moves extracted parasitics from the
layout tool to the sign-off timer as SPEF.  This module serializes an
:class:`~repro.signoff.extraction.ExtractedLine` to a SPEF-flavoured
text format (one ``*D_NET`` per wire segment with ``*CAP`` and ``*RES``
sections) and parses it back, so the golden flow can round-trip through
files exactly like the real tool chain.

The subset written/parsed:

.. code-block:: text

    *SPEF "IEEE 1481"
    *DESIGN line_90nm
    *T_UNIT 1 PS
    *C_UNIT 1 FF
    *R_UNIT 1 OHM
    *D_NET seg0 12.5
    *CAP
    1 seg0:1 3.1
    2 seg0:1 seg1:1 1.4
    *RES
    1 seg0:1 seg0:2 25.0
    *END
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.units import FEMTO, PICO


@dataclass
class SpefNet:
    """One net's parasitics in SI units.

    ``ground_caps`` maps node name -> capacitance to ground (F).
    ``coupling_caps`` maps (node, other_net_node) -> capacitance (F).
    ``resistors`` is a list of (node_a, node_b, ohms).
    """

    name: str
    total_cap: float = 0.0
    ground_caps: Dict[str, float] = field(default_factory=dict)
    coupling_caps: Dict[Tuple[str, str], float] = field(
        default_factory=dict)
    resistors: List[Tuple[str, str, float]] = field(default_factory=list)


@dataclass
class SpefFile:
    """A parsed SPEF document."""

    design: str
    nets: List[SpefNet] = field(default_factory=list)

    def net(self, name: str) -> SpefNet:
        for net in self.nets:
            if net.name == name:
                return net
        raise KeyError(f"no net {name!r} in SPEF design {self.design!r}")


def dumps_spef(spef: SpefFile) -> str:
    """Serialize to SPEF text (times in ps, caps in fF, res in ohm)."""
    lines = [
        '*SPEF "IEEE 1481"',
        f"*DESIGN {spef.design}",
        "*T_UNIT 1 PS",
        "*C_UNIT 1 FF",
        "*R_UNIT 1 OHM",
    ]
    for net in spef.nets:
        lines.append(f"*D_NET {net.name} {net.total_cap / FEMTO:.6g}")
        lines.append("*CAP")
        index = 1
        for node, cap in net.ground_caps.items():
            lines.append(f"{index} {node} {cap / FEMTO:.6g}")
            index += 1
        for (node, other), cap in net.coupling_caps.items():
            lines.append(f"{index} {node} {other} {cap / FEMTO:.6g}")
            index += 1
        lines.append("*RES")
        for index, (a, b, ohms) in enumerate(net.resistors, start=1):
            lines.append(f"{index} {a} {b} {ohms:.6g}")
        lines.append("*END")
    return "\n".join(lines) + "\n"


class SpefParseError(ValueError):
    """Raised on malformed SPEF input."""


def loads_spef(text: str) -> SpefFile:
    """Parse SPEF text produced by :func:`dumps_spef`."""
    design = ""
    nets: List[SpefNet] = []
    current: SpefNet = SpefNet(name="")
    section = ""
    have_net = False

    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        tokens = line.split()
        keyword = tokens[0]
        if keyword == "*SPEF":
            continue
        if keyword == "*DESIGN":
            design = tokens[1]
        elif keyword in ("*T_UNIT", "*C_UNIT", "*R_UNIT"):
            continue  # fixed units are always written by dumps_spef
        elif keyword == "*D_NET":
            current = SpefNet(name=tokens[1],
                              total_cap=float(tokens[2]) * FEMTO)
            have_net = True
            section = ""
        elif keyword == "*CAP":
            section = "cap"
        elif keyword == "*RES":
            section = "res"
        elif keyword == "*END":
            if not have_net:
                raise SpefParseError("*END without *D_NET")
            nets.append(current)
            have_net = False
        elif section == "cap":
            if len(tokens) == 3:
                current.ground_caps[tokens[1]] = float(tokens[2]) * FEMTO
            elif len(tokens) == 4:
                key = (tokens[1], tokens[2])
                current.coupling_caps[key] = float(tokens[3]) * FEMTO
            else:
                raise SpefParseError(f"malformed cap line: {line!r}")
        elif section == "res":
            if len(tokens) != 4:
                raise SpefParseError(f"malformed res line: {line!r}")
            current.resistors.append(
                (tokens[1], tokens[2], float(tokens[3])))
        else:
            raise SpefParseError(f"unexpected SPEF line: {line!r}")
    if have_net:
        raise SpefParseError("unterminated *D_NET section")
    return SpefFile(design=design, nets=nets)


def line_to_spef(line, segments_per_wire: int = 8) -> SpefFile:
    """Export an :class:`~repro.signoff.extraction.ExtractedLine`.

    Each stage's wire becomes one net, discretized into
    ``segments_per_wire`` RC sections; coupling capacitance is recorded
    against the (symbolic) neighbour nets ``<net>_aggr``.
    """
    spef = SpefFile(design=f"line_{line.tech.name}")
    for stage_index, stage in enumerate(line.stages):
        wire = stage.wire
        net = SpefNet(
            name=f"seg{stage_index}",
            total_cap=wire.ground_cap + wire.coupling_cap,
        )
        n = segments_per_wire
        r_step = wire.resistance / n
        cg_step = wire.ground_cap / n
        cc_step = wire.coupling_cap / n
        for k in range(1, n + 1):
            node = f"seg{stage_index}:{k}"
            net.ground_caps[node] = cg_step
            net.coupling_caps[(node, f"seg{stage_index}_aggr:{k}")] = cc_step
            previous = (f"seg{stage_index}:{k - 1}" if k > 1
                        else f"seg{stage_index}:in")
            net.resistors.append((previous, node, r_step))
        spef.nets.append(net)
    return spef


#: Unit constants exposed for tests (values written by dumps_spef).
SPEF_TIME_UNIT = PICO
SPEF_CAP_UNIT = FEMTO
