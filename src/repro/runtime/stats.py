"""Compatibility facade over :mod:`repro.runtime.metrics`.

The original ``STATS`` registry grew into the full metrics aggregator;
this module keeps the historical import surface alive:

* :data:`STATS` *is* :data:`repro.runtime.metrics.METRICS` — the same
  process-wide object, so old and new call sites share one registry;
* :class:`RuntimeStats` is an alias of
  :class:`repro.runtime.metrics.MetricsRegistry`, which preserves the
  whole old API (``count``/``add_time``/``timer``/``reset``/
  ``cache_hit_rate``/``format_footer``) and adds payload merging.

New code should import from :mod:`repro.runtime.metrics` (or the
:mod:`repro.runtime` package) directly.
"""

from __future__ import annotations

from repro.runtime.metrics import METRICS, MetricsRegistry

#: Historical name of the metrics registry class.
RuntimeStats = MetricsRegistry

#: The process-wide registry (same object as ``metrics.METRICS``).
STATS = METRICS

__all__ = ["RuntimeStats", "STATS"]
