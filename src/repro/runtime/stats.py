"""Lightweight timing and counter instrumentation.

A single process-wide :data:`STATS` registry collects named counters
(cache hits/misses, tasks executed) and named wall-time accumulators.
Recording is cheap enough to stay always-on; the CLI's ``--stats`` flag
merely decides whether the footer is printed.

Worker processes collect into their *own* registry — the parent only
sees what happened in-process plus whatever the disk cache persisted.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class RuntimeStats:
    """Named counters and wall-time accumulators."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}

    # -- recording --------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    # -- derived ----------------------------------------------------------

    def cache_hit_rate(self) -> Optional[float]:
        """Disk-cache hit fraction, or ``None`` before any lookup."""
        hits = self.counters.get("cache.hit", 0)
        misses = self.counters.get("cache.miss", 0)
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def format_footer(self) -> str:
        """The ``--stats`` footer: wall time, cache traffic, workers."""
        lines = ["-- runtime stats --"]
        for name in sorted(self.timers):
            lines.append(f"  {name:<24} {self.timers[name]:9.3f} s")
        hit_rate = self.cache_hit_rate()
        if hit_rate is not None:
            lines.append(
                f"  {'cache hit rate':<24} {hit_rate * 100:8.1f} % "
                f"({self.counters.get('cache.hit', 0)} hit / "
                f"{self.counters.get('cache.miss', 0)} miss)")
        for name in sorted(self.counters):
            if name in ("cache.hit", "cache.miss"):
                continue
            lines.append(f"  {name:<24} {self.counters[name]:9d}")
        return "\n".join(lines)


#: The process-wide registry.
STATS = RuntimeStats()
