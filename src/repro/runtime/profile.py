"""Span-attributed profiling and flamegraph export.

The tracer already records when every span begins and ends; this
module turns that event stream into profiler artifacts without any
external tooling:

* :func:`build_profile` aggregates self/cumulative time per *span
  path* (the root-to-span name chain), so ``--profile time`` answers
  "where did the wall clock go" at call-tree resolution;
* :class:`MemoryProfiler` hooks the tracer (``Tracer.set_profiler``)
  and annotates every span's end event with ``tracemalloc`` deltas —
  ``mem_net_bytes`` (allocated minus freed while the span was open)
  and ``mem_peak_bytes`` (peak traced usage above the level at entry,
  including peaks reached inside child spans);
* :func:`collapse_stacks` / :func:`write_flamegraph` render the span
  tree in the Brendan Gregg collapsed-stack format
  (``root;child;leaf <weight>``, one line per unique path, weights in
  integer microseconds of *self* time), which flamegraph.pl, speedscope
  and d3-flame-graph all consume directly.

Self time is ``duration - sum(child durations)`` clamped at zero; for
a serial trace the clamp never engages and the total collapsed weight
equals the root span's duration exactly (up to microsecond rounding).
Spliced worker spans overlap in wall time under their dispatching
``parallel.map`` span, so a parallel trace's total weight legitimately
exceeds the root duration — the flamegraph then shows CPU time, not
wall time.

The CLI wires this up as ``--profile {off,time,memory,all}`` on every
subcommand and ``repro report TRACE --flamegraph OUT`` for recorded
traces.
"""

from __future__ import annotations

import re
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Dict, Iterable, Iterator, List, Tuple,
                    Union)

from repro.runtime.trace import Event

#: The ``--profile`` CLI modes.
PROFILE_MODES = ("off", "time", "memory", "all")

#: Collapsed-stack weights are integer microseconds of self time.
_WEIGHT_SCALE = 1e6

#: Frame separators the collapsed format reserves.
_FRAME_UNSAFE = re.compile(r"[;\s]")


def _frame(name: str) -> str:
    """A span name as a legal collapsed-stack frame."""
    return _FRAME_UNSAFE.sub("_", name)


def _completed_spans(events: Iterable[Event]
                     ) -> Iterator[Tuple[Tuple[str, ...], float, float,
                                         Dict[str, Any]]]:
    """Yield ``(path, duration, self_seconds, end_args)`` per span.

    Walks the B/E stream the same way ``summarize_events`` does, but
    keyed by the full root-to-span name path instead of the bare name.
    Structural problems (duplicate begins, orphan ends, unclosed
    spans) are skipped silently here — ``repro report`` surfaces them
    through the summary's warnings.
    """
    # span id -> [name, parent id, begin ts, child time, path]
    open_spans: Dict[Any, List[Any]] = {}
    for event in events:
        phase = event.get("ph")
        span_id = event.get("span")
        if phase == "B":
            if span_id in open_spans:
                continue
            parent = event.get("parent")
            parent_entry = open_spans.get(parent)
            name = _frame(event.get("name", "?"))
            path = (parent_entry[4] + (name,) if parent_entry
                    else (name,))
            open_spans[span_id] = [name, parent, event.get("ts", 0.0),
                                   0.0, path]
        elif phase == "E":
            entry = open_spans.pop(span_id, None)
            if entry is None:
                continue
            _name, parent, begin_ts, child_time, path = entry
            duration = max(0.0, event.get("ts", begin_ts) - begin_ts)
            if parent in open_spans:
                open_spans[parent][3] += duration
            yield (path, duration, max(0.0, duration - child_time),
                   event.get("args") or {})


@dataclass
class PathProfile:
    """Accumulated cost of every span sharing one call path."""

    path: Tuple[str, ...]
    calls: int = 0
    total: float = 0.0          # s, inclusive of children
    self_seconds: float = 0.0   # s, exclusive
    mem_net_bytes: int = 0      # summed over calls
    mem_peak_bytes: int = 0     # max over calls


@dataclass
class ProfileReport:
    """Per-path rollup of one span event stream."""

    paths: Dict[Tuple[str, ...], PathProfile] = field(
        default_factory=dict)

    @property
    def total_self(self) -> float:
        return sum(entry.self_seconds for entry in self.paths.values())

    def format(self, memory: bool = False) -> str:
        """A self-time-sorted profile table (``--profile`` output)."""
        header = f"{'self s':>10} {'total s':>10} {'calls':>7}"
        if memory:
            header += f" {'net KiB':>10} {'peak KiB':>10}"
        lines = [f"-- profile ({'all' if memory else 'time'}) --",
                 header + "  span path"]
        ordered = sorted(self.paths.values(),
                         key=lambda entry: (-entry.self_seconds,
                                            entry.path))
        for entry in ordered:
            row = (f"{entry.self_seconds:10.3f} {entry.total:10.3f} "
                   f"{entry.calls:7d}")
            if memory:
                row += (f" {entry.mem_net_bytes / 1024:10.1f}"
                        f" {entry.mem_peak_bytes / 1024:10.1f}")
            lines.append(row + "  " + ";".join(entry.path))
        lines.append(f"{len(self.paths)} span paths, "
                     f"total self {self.total_self:.3f} s")
        return "\n".join(lines)


def build_profile(events: Iterable[Event]) -> ProfileReport:
    """Aggregate an event stream into a per-path profile."""
    report = ProfileReport()
    for path, duration, self_seconds, args in _completed_spans(events):
        entry = report.paths.get(path)
        if entry is None:
            entry = report.paths[path] = PathProfile(path=path)
        entry.calls += 1
        entry.total += duration
        entry.self_seconds += self_seconds
        entry.mem_net_bytes += int(args.get("mem_net_bytes", 0))
        entry.mem_peak_bytes = max(entry.mem_peak_bytes,
                                   int(args.get("mem_peak_bytes", 0)))
    return report


def collapse_stacks(events: Iterable[Event]) -> List[str]:
    """The event stream as collapsed-stack lines, sorted by path.

    One ``a;b;c <microseconds>`` line per unique span path, weighted
    by accumulated self time; sub-microsecond paths are dropped after
    rounding (zero-weight lines carry no information for a renderer).
    """
    weights: Dict[Tuple[str, ...], float] = {}
    for path, _duration, self_seconds, _args \
            in _completed_spans(events):
        weights[path] = weights.get(path, 0.0) + self_seconds
    lines = []
    for path in sorted(weights):
        weight = int(round(weights[path] * _WEIGHT_SCALE))
        if weight <= 0:
            continue
        lines.append(";".join(path) + f" {weight}")
    return lines


def write_flamegraph(events: Iterable[Event],
                     path: Union[str, Path]) -> int:
    """Write the collapsed-stack file; returns the line count."""
    lines = collapse_stacks(events)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


class MemoryProfiler:
    """Annotates spans with tracemalloc net/peak byte deltas.

    Attach with ``TRACER.set_profiler(MemoryProfiler())`` *after*
    ``tracemalloc.start()``; every span's end event then carries
    ``mem_net_bytes`` and ``mem_peak_bytes``.  The profiler keeps its
    own entry stack (``Span.__slots__`` leaves no room to stash state
    on spans) and mirrors the tracer's tolerance for mis-nested exits.
    Peaks observed inside a child span propagate to the parent, so a
    parent's peak is never smaller than its children's.
    """

    def __init__(self) -> None:
        # [span, traced bytes at entry, running peak inside the span]
        self._stack: List[List[Any]] = []

    def on_enter(self, span: Any) -> None:
        if not tracemalloc.is_tracing():
            return
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        self._stack.append([span, current, current])

    def on_exit(self, span: Any) -> None:
        if not tracemalloc.is_tracing() or not self._stack:
            return
        current, peak = tracemalloc.get_traced_memory()
        while self._stack and self._stack[-1][0] is not span:
            self._stack.pop()
        if not self._stack:
            return
        _span, entered, running_peak = self._stack.pop()
        span_peak = max(running_peak, peak)
        span.annotate(mem_net_bytes=current - entered,
                      mem_peak_bytes=max(0, span_peak - entered))
        if self._stack:
            parent = self._stack[-1]
            parent[2] = max(parent[2], span_peak)
        tracemalloc.reset_peak()
