"""Execution runtime: parallelism, persistent caching, instrumentation.

Every heavy workload in the reproduction — Monte-Carlo within-die
variation, flit-width exploration, the six-node scaling study and the
Table II/III sweeps — is an embarrassingly parallel loop.  This package
provides the shared machinery that makes those loops scale with cores
while provably preserving their serial results:

* :func:`repro.runtime.parallel.parallel_map` — a deterministic
  process-pool map with a serial fallback;
* :func:`repro.runtime.parallel.spawn_seed_sequences` — per-task RNG
  streams via :class:`numpy.random.SeedSequence` so a parallel
  Monte-Carlo run reproduces the serial stream bit-for-bit;
* :class:`repro.runtime.cache.DiskCache` — a versioned on-disk cache
  (under ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) that warm-starts
  link designs and calibration coefficients across processes;
* :data:`repro.runtime.metrics.METRICS` — the process-wide counter /
  wall-time registry surfaced by the ``--stats`` CLI flag
  (:data:`STATS` is its compatibility alias), merged across worker
  processes by ``parallel_map``;
* :func:`repro.runtime.trace.span` / :data:`repro.runtime.trace.TRACER`
  — hierarchical span tracing with pluggable sinks (``--trace`` writes
  JSONL), free when no sink is attached;
* :mod:`repro.runtime.manifest` — the ``manifest.json`` provenance
  record written next to traced runs.

Configuration resolves in this order: explicit function arguments,
:func:`configure` (what the CLI flags set), environment variables
(``REPRO_WORKERS``, ``REPRO_CACHE_DIR``, ``REPRO_NO_CACHE``,
``REPRO_MAX_RETRIES``, ``REPRO_FAULTS``), then the defaults (serial
execution, cache enabled, no pool retries, no faults).  All
environment values go through one pair of parsers — :func:`env_int`
and :func:`env_flag` — so every variable shares the same whitespace
and truthiness rules and misconfigurations fail loudly instead of
silently flipping behaviour.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.runtime import faults
from repro.runtime.cache import (
    CACHE_VERSION,
    DiskCache,
    cache_dir,
    fingerprint,
)
from repro.runtime.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifest_path_for,
    run_environment,
    utc_timestamp,
    write_manifest,
)
from repro.runtime.metrics import METRICS, Histogram, MetricsRegistry
from repro.runtime.parallel import (
    TaskError,
    new_pool,
    parallel_map,
    resolve_max_retries,
    resolve_workers,
    spawn_generators,
    spawn_labeled_sequences,
    spawn_seed_sequences,
)
from repro.runtime.profile import (
    MemoryProfiler,
    PROFILE_MODES,
    build_profile,
    collapse_stacks,
    write_flamegraph,
)
from repro.runtime.stats import STATS, RuntimeStats
from repro.runtime.trace import (
    JsonlSink,
    SpanCollector,
    TRACER,
    Tracer,
    current_span,
    export_chrome_trace,
    span,
    summarize_events,
    summarize_trace,
)

__all__ = [
    "CACHE_VERSION",
    "DiskCache",
    "Histogram",
    "JsonlSink",
    "MANIFEST_SCHEMA",
    "METRICS",
    "MemoryProfiler",
    "MetricsRegistry",
    "PROFILE_MODES",
    "RuntimeStats",
    "STATS",
    "SpanCollector",
    "TRACER",
    "TaskError",
    "Tracer",
    "build_manifest",
    "build_profile",
    "collapse_stacks",
    "cache_dir",
    "cache_enabled",
    "configure",
    "configured_max_retries",
    "configured_workers",
    "current_span",
    "env_flag",
    "env_int",
    "env_str",
    "export_chrome_trace",
    "faults",
    "fingerprint",
    "manifest_path_for",
    "new_pool",
    "parallel_map",
    "reset_configuration",
    "resolve_max_retries",
    "resolve_workers",
    "run_environment",
    "span",
    "spawn_generators",
    "spawn_labeled_sequences",
    "spawn_seed_sequences",
    "summarize_events",
    "summarize_trace",
    "utc_timestamp",
    "write_flamegraph",
    "write_manifest",
]

#: Process-wide overrides set by :func:`configure` (the CLI flags).
_WORKERS_OVERRIDE: Optional[int] = None
_CACHE_OVERRIDE: Optional[bool] = None
_MAX_RETRIES_OVERRIDE: Optional[int] = None

#: The spellings :func:`env_flag` accepts (after strip + lower).
_FLAG_TRUE = frozenset({"1", "true", "yes", "on"})
_FLAG_FALSE = frozenset({"0", "false", "no", "off"})


def env_int(name: str) -> Optional[int]:
    """The integer value of an environment variable, or ``None``.

    Unset and whitespace-only values mean "not configured"; anything
    else must parse as an integer or the misconfiguration is raised
    loudly — a typo in ``REPRO_WORKERS`` or ``REPRO_MAX_RETRIES`` must
    never silently fall back to a default.
    """
    raw = os.environ.get(name)
    if raw is None:
        return None
    value = raw.strip()
    if not value:
        return None
    try:
        return int(value)
    except ValueError as exc:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}") from exc


def env_str(name: str) -> Optional[str]:
    """The stripped string value of an environment variable.

    Unset and whitespace-only values mean "not configured" (``None``),
    matching :func:`env_int`'s whitespace rule so ``REPRO_SERVE_HOST=" "``
    cannot silently configure a blank host name.
    """
    raw = os.environ.get(name)
    if raw is None:
        return None
    value = raw.strip()
    return value or None


def env_flag(name: str, default: bool = False) -> bool:
    """The boolean value of an environment variable.

    Accepts ``1/true/yes/on`` and ``0/false/no/off`` (any case,
    surrounding whitespace ignored); unset or empty means ``default``.
    Every boolean variable shares this one truthiness rule — before it
    existed, ``REPRO_NO_CACHE="0 "`` (note the space) silently
    disabled the cache while ``REPRO_WORKERS`` was stripped and
    validated, an inconsistency this helper removes.  Unrecognized
    spellings raise :class:`ValueError` rather than guessing.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if not value:
        return default
    if value in _FLAG_TRUE:
        return True
    if value in _FLAG_FALSE:
        return False
    raise ValueError(
        f"{name} must be one of 1/0/true/false/yes/no/on/off, "
        f"got {raw!r}")


def configure(workers: Optional[int] = None,
              cache_enabled: Optional[bool] = None,
              max_retries: Optional[int] = None) -> None:
    """Set process-wide runtime defaults (``None`` leaves one as-is)."""
    global _WORKERS_OVERRIDE, _CACHE_OVERRIDE, _MAX_RETRIES_OVERRIDE
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        _WORKERS_OVERRIDE = workers
    if cache_enabled is not None:
        _CACHE_OVERRIDE = cache_enabled
    if max_retries is not None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        _MAX_RETRIES_OVERRIDE = max_retries


def reset_configuration() -> None:
    """Drop all :func:`configure` overrides (mainly for tests)."""
    global _WORKERS_OVERRIDE, _CACHE_OVERRIDE, _MAX_RETRIES_OVERRIDE
    _WORKERS_OVERRIDE = None
    _CACHE_OVERRIDE = None
    _MAX_RETRIES_OVERRIDE = None


def configured_workers() -> Optional[int]:
    """The worker count set via :func:`configure`, if any."""
    return _WORKERS_OVERRIDE


def configured_max_retries() -> Optional[int]:
    """The crash-retry budget set via :func:`configure`, if any."""
    return _MAX_RETRIES_OVERRIDE


def cache_enabled() -> bool:
    """Whether the persistent disk cache should be consulted."""
    if _CACHE_OVERRIDE is not None:
        return _CACHE_OVERRIDE
    return not env_flag("REPRO_NO_CACHE", default=False)
