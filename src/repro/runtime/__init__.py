"""Execution runtime: parallelism, persistent caching, instrumentation.

Every heavy workload in the reproduction — Monte-Carlo within-die
variation, flit-width exploration, the six-node scaling study and the
Table II/III sweeps — is an embarrassingly parallel loop.  This package
provides the shared machinery that makes those loops scale with cores
while provably preserving their serial results:

* :func:`repro.runtime.parallel.parallel_map` — a deterministic
  process-pool map with a serial fallback;
* :func:`repro.runtime.parallel.spawn_seed_sequences` — per-task RNG
  streams via :class:`numpy.random.SeedSequence` so a parallel
  Monte-Carlo run reproduces the serial stream bit-for-bit;
* :class:`repro.runtime.cache.DiskCache` — a versioned on-disk cache
  (under ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) that warm-starts
  link designs and calibration coefficients across processes;
* :data:`repro.runtime.stats.STATS` — wall-time / cache-hit counters
  surfaced by the ``--stats`` CLI flag.

Configuration resolves in this order: explicit function arguments,
:func:`configure` (what the CLI flags set), environment variables
(``REPRO_WORKERS``, ``REPRO_CACHE_DIR``, ``REPRO_NO_CACHE``), then the
defaults (serial execution, cache enabled).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.runtime.cache import (
    CACHE_VERSION,
    DiskCache,
    cache_dir,
    fingerprint,
)
from repro.runtime.parallel import (
    parallel_map,
    resolve_workers,
    spawn_generators,
    spawn_seed_sequences,
)
from repro.runtime.stats import STATS, RuntimeStats

__all__ = [
    "CACHE_VERSION",
    "DiskCache",
    "RuntimeStats",
    "STATS",
    "cache_dir",
    "cache_enabled",
    "configure",
    "configured_workers",
    "fingerprint",
    "parallel_map",
    "reset_configuration",
    "resolve_workers",
    "spawn_generators",
    "spawn_seed_sequences",
]

#: Process-wide overrides set by :func:`configure` (the CLI flags).
_WORKERS_OVERRIDE: Optional[int] = None
_CACHE_OVERRIDE: Optional[bool] = None


def configure(workers: Optional[int] = None,
              cache_enabled: Optional[bool] = None) -> None:
    """Set process-wide runtime defaults (``None`` leaves one as-is)."""
    global _WORKERS_OVERRIDE, _CACHE_OVERRIDE
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        _WORKERS_OVERRIDE = workers
    if cache_enabled is not None:
        _CACHE_OVERRIDE = cache_enabled


def reset_configuration() -> None:
    """Drop all :func:`configure` overrides (mainly for tests)."""
    global _WORKERS_OVERRIDE, _CACHE_OVERRIDE
    _WORKERS_OVERRIDE = None
    _CACHE_OVERRIDE = None


def configured_workers() -> Optional[int]:
    """The worker count set via :func:`configure`, if any."""
    return _WORKERS_OVERRIDE


def cache_enabled() -> bool:
    """Whether the persistent disk cache should be consulted."""
    if _CACHE_OVERRIDE is not None:
        return _CACHE_OVERRIDE
    return os.environ.get("REPRO_NO_CACHE", "") in ("", "0")
