"""Execution runtime: parallelism, persistent caching, instrumentation.

Every heavy workload in the reproduction — Monte-Carlo within-die
variation, flit-width exploration, the six-node scaling study and the
Table II/III sweeps — is an embarrassingly parallel loop.  This package
provides the shared machinery that makes those loops scale with cores
while provably preserving their serial results:

* :func:`repro.runtime.parallel.parallel_map` — a deterministic
  process-pool map with a serial fallback;
* :func:`repro.runtime.parallel.spawn_seed_sequences` — per-task RNG
  streams via :class:`numpy.random.SeedSequence` so a parallel
  Monte-Carlo run reproduces the serial stream bit-for-bit;
* :class:`repro.runtime.cache.DiskCache` — a versioned on-disk cache
  (under ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) that warm-starts
  link designs and calibration coefficients across processes;
* :data:`repro.runtime.metrics.METRICS` — the process-wide counter /
  wall-time registry surfaced by the ``--stats`` CLI flag
  (:data:`STATS` is its compatibility alias), merged across worker
  processes by ``parallel_map``;
* :func:`repro.runtime.trace.span` / :data:`repro.runtime.trace.TRACER`
  — hierarchical span tracing with pluggable sinks (``--trace`` writes
  JSONL), free when no sink is attached;
* :mod:`repro.runtime.manifest` — the ``manifest.json`` provenance
  record written next to traced runs.

Configuration resolves in this order: explicit function arguments,
:func:`configure` (what the CLI flags set), environment variables
(``REPRO_WORKERS``, ``REPRO_CACHE_DIR``, ``REPRO_NO_CACHE``), then the
defaults (serial execution, cache enabled).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.runtime.cache import (
    CACHE_VERSION,
    DiskCache,
    cache_dir,
    fingerprint,
)
from repro.runtime.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    manifest_path_for,
    utc_timestamp,
    write_manifest,
)
from repro.runtime.metrics import METRICS, MetricsRegistry
from repro.runtime.parallel import (
    parallel_map,
    resolve_workers,
    spawn_generators,
    spawn_seed_sequences,
)
from repro.runtime.stats import STATS, RuntimeStats
from repro.runtime.trace import (
    JsonlSink,
    SpanCollector,
    TRACER,
    Tracer,
    current_span,
    export_chrome_trace,
    span,
    summarize_trace,
)

__all__ = [
    "CACHE_VERSION",
    "DiskCache",
    "JsonlSink",
    "MANIFEST_SCHEMA",
    "METRICS",
    "MetricsRegistry",
    "RuntimeStats",
    "STATS",
    "SpanCollector",
    "TRACER",
    "Tracer",
    "build_manifest",
    "cache_dir",
    "cache_enabled",
    "configure",
    "configured_workers",
    "current_span",
    "export_chrome_trace",
    "fingerprint",
    "manifest_path_for",
    "parallel_map",
    "reset_configuration",
    "resolve_workers",
    "span",
    "spawn_generators",
    "spawn_seed_sequences",
    "summarize_trace",
    "utc_timestamp",
    "write_manifest",
]

#: Process-wide overrides set by :func:`configure` (the CLI flags).
_WORKERS_OVERRIDE: Optional[int] = None
_CACHE_OVERRIDE: Optional[bool] = None


def configure(workers: Optional[int] = None,
              cache_enabled: Optional[bool] = None) -> None:
    """Set process-wide runtime defaults (``None`` leaves one as-is)."""
    global _WORKERS_OVERRIDE, _CACHE_OVERRIDE
    if workers is not None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        _WORKERS_OVERRIDE = workers
    if cache_enabled is not None:
        _CACHE_OVERRIDE = cache_enabled


def reset_configuration() -> None:
    """Drop all :func:`configure` overrides (mainly for tests)."""
    global _WORKERS_OVERRIDE, _CACHE_OVERRIDE
    _WORKERS_OVERRIDE = None
    _CACHE_OVERRIDE = None


def configured_workers() -> Optional[int]:
    """The worker count set via :func:`configure`, if any."""
    return _WORKERS_OVERRIDE


def cache_enabled() -> bool:
    """Whether the persistent disk cache should be consulted."""
    if _CACHE_OVERRIDE is not None:
        return _CACHE_OVERRIDE
    return os.environ.get("REPRO_NO_CACHE", "") in ("", "0")
