"""Process-wide metrics: counters, timers and value histograms.

:class:`MetricsRegistry` is the aggregation point every layer records
into — cache traffic, parallel task counts, synthesis rejection
reasons, per-phase wall time, and (since the performance observatory)
full value *distributions* via :meth:`MetricsRegistry.observe`.  A
single process-wide :data:`METRICS` registry serves the whole process;
worker processes record into their own (reset per chunk) and
:func:`repro.runtime.parallel.parallel_map` merges the serialized
payloads back into the parent, so ``--stats`` totals are identical for
any worker count.

Histograms use a fixed log-linear bucket layout (nine buckets per
decade from 1e-9 to 9e3), so merging is a plain per-bucket addition:
the merged histogram — and therefore every quantile read from it — is
a pure function of the *multiset* of observed values, independent of
observation order, chunking or worker count.  That is the property the
worker-count-invariance tests pin down.

The registry subsumes the original ad-hoc ``STATS`` object;
:mod:`repro.runtime.stats` re-exports :data:`METRICS` under its old
name as a compatibility facade.

Recording is cheap enough to stay always-on (two dict operations, one
bisect for histograms); the CLI's ``--stats`` flag merely decides
whether the footer is printed.  :meth:`MetricsRegistry.to_openmetrics`
renders the whole registry in the OpenMetrics/Prometheus text
exposition format, so a future ``repro serve`` can expose the same
numbers unchanged.
"""

from __future__ import annotations

import math
import re
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

#: Minimum label column width of the ``--stats`` footer.  Longer metric
#: names widen the column for the whole footer instead of breaking the
#: alignment.
_FOOTER_MIN_WIDTH = 24

#: Histogram bucket upper edges: ``m * 10**e`` for nine mantissas per
#: decade across 1e-9 .. 9e3 (seconds-flavoured, but unit-agnostic).
#: Fixed for every histogram so any two histograms merge bucket-wise.
HISTOGRAM_EDGES = tuple(m * 10.0 ** e
                        for e in range(-9, 4)
                        for m in range(1, 10))

#: Index of the overflow bucket (values above the last edge).
_OVERFLOW_BUCKET = len(HISTOGRAM_EDGES)


class Histogram:
    """A fixed-bucket log-linear histogram of non-negative values.

    Buckets are shared by construction (:data:`HISTOGRAM_EDGES`), so
    histograms merge by adding counts — the merge is associative,
    commutative and exact, which makes quantiles *deterministic*: they
    depend only on which values were observed, never on the order or
    on how observations were split across worker processes.

    Besides bucket counts the histogram tracks exact ``count``,
    ``sum``, ``sum_squares``, ``min`` and ``max``, giving an exact
    mean and a standard error without storing samples.  Values at or
    below the first edge (including any stray negatives) land in
    bucket 0; values above the last edge land in the overflow bucket
    and quantiles there interpolate up to the observed maximum.
    """

    __slots__ = ("counts", "count", "sum", "sum_squares",
                 "minimum", "maximum")

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.sum_squares = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(HISTOGRAM_EDGES, value)
        self.counts[index] = self.counts.get(index, 0) + 1
        self.count += 1
        self.sum += value
        self.sum_squares += value * value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    # -- statistics -------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def standard_error(self) -> float:
        """Standard error of the mean (0.0 below two observations)."""
        if self.count < 2:
            return 0.0
        mean = self.sum / self.count
        variance = max(0.0, self.sum_squares / self.count - mean * mean)
        variance *= self.count / (self.count - 1)
        return math.sqrt(variance / self.count)

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile, interpolated within its bucket.

        ``None`` before any observation.  The result is a pure
        function of the bucket counts and the exact min/max, so it is
        identical for any merge order or worker count.
        """
        if self.count == 0 or self.minimum is None \
                or self.maximum is None:
            return None
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        target = q * self.count
        cumulative = 0
        for index in sorted(self.counts):
            bucket = self.counts[index]
            cumulative += bucket
            if cumulative >= target:
                lower = (0.0 if index == 0
                         else HISTOGRAM_EDGES[index - 1])
                upper = (self.maximum if index >= _OVERFLOW_BUCKET
                         else HISTOGRAM_EDGES[index])
                fraction = (target - (cumulative - bucket)) / bucket
                value = lower + (upper - lower) * fraction
                return min(max(value, self.minimum), self.maximum)
        return self.maximum

    # -- cross-process aggregation ----------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A picklable/JSON-safe snapshot (bucket keys as strings)."""
        return {
            "counts": {str(index): amount
                       for index, amount in self.counts.items()},
            "count": self.count,
            "sum": self.sum,
            "sum_squares": self.sum_squares,
            "min": self.minimum,
            "max": self.maximum,
        }

    def merge_payload(self, payload: Mapping[str, Any]) -> None:
        for key, amount in payload.get("counts", {}).items():
            index = int(key)
            self.counts[index] = self.counts.get(index, 0) + amount
        self.count += payload.get("count", 0)
        self.sum += payload.get("sum", 0.0)
        self.sum_squares += payload.get("sum_squares", 0.0)
        other_min = payload.get("min")
        if other_min is not None and (self.minimum is None
                                      or other_min < self.minimum):
            self.minimum = other_min
        other_max = payload.get("max")
        if other_max is not None and (self.maximum is None
                                      or other_max > self.maximum):
            self.maximum = other_max

    def merge(self, other: "Histogram") -> None:
        self.merge_payload(other.to_payload())


class MetricsRegistry:
    """Named counters, wall-time accumulators and value histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- recording --------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def observe(self, name: str, value: float) -> None:
        """Record one value into the named histogram.

        Metric names must be string literals (or registry constants)
        at the call site — ``repro lint``'s ``span-hygiene`` rule
        enforces it; a name built per call goes through
        :meth:`observe_keyed` instead.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def observe_keyed(self, base: str, key: Optional[str],
                      value: float) -> None:
        """Observe under a dynamically keyed name ``base[.key]``.

        The sanctioned door for per-population metric families (e.g.
        per-kind cache lookup times): the *base* stays a literal the
        lint rule can see, while ``key`` selects the family member.
        """
        self.observe(f"{base}.{key}" if key else base, value)

    @contextmanager
    def observed(self, name: str) -> Iterator[None]:
        """Time a block and :meth:`observe` its duration once."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self.histograms.clear()

    # -- cross-process aggregation ----------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A picklable/JSON-safe snapshot (what workers send back)."""
        return {"counters": dict(self.counters),
                "timers": dict(self.timers),
                "histograms": {name: histogram.to_payload()
                               for name, histogram
                               in self.histograms.items()}}

    def merge_payload(self, payload: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_payload` snapshot into this registry.

        Payloads without a ``histograms`` block (pre-observatory
        producers) merge fine — the block is simply absent.
        """
        for name, amount in payload.get("counters", {}).items():
            self.count(name, amount)
        for name, seconds in payload.get("timers", {}).items():
            self.add_time(name, seconds)
        for name, snapshot in payload.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge_payload(snapshot)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_payload(other.to_payload())

    # -- derived ----------------------------------------------------------

    def histogram(self, name: str) -> Optional[Histogram]:
        return self.histograms.get(name)

    def quantile(self, name: str, q: float) -> Optional[float]:
        """The ``q``-quantile of a named histogram, if it has data."""
        histogram = self.histograms.get(name)
        if histogram is None:
            return None
        return histogram.quantile(q)

    def histogram_summaries(self) -> Dict[str, Dict[str, Any]]:
        """Per-histogram ``{count, mean, p50, p95, p99}`` rollups.

        Sorted by name; empty when nothing was observed — manifests
        elide the block entirely in that case.
        """
        summaries: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            if histogram.count == 0:
                continue
            summaries[name] = {
                "count": histogram.count,
                "mean": histogram.mean,
                "p50": histogram.quantile(0.5),
                "p95": histogram.quantile(0.95),
                "p99": histogram.quantile(0.99),
            }
        return summaries

    def cache_hit_rate(self) -> Optional[float]:
        """Disk-cache hit fraction, or ``None`` before any lookup."""
        hits = self.counters.get("cache.hit", 0)
        misses = self.counters.get("cache.miss", 0)
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def fault_counters(self) -> Dict[str, int]:
        """The ``faults.*`` family: injections, crashes, recoveries.

        Sorted by name so manifests and reports render stably.  Empty
        for a clean run — the common case — which lets callers elide
        the whole block.
        """
        return {name: self.counters[name]
                for name in sorted(self.counters)
                if name.startswith("faults.")}

    def task_throughput(self) -> Optional[float]:
        """Parallel tasks per second of map wall time, if measurable.

        Defined when both the ``parallel.tasks`` counter and a matching
        ``parallel.pool`` / ``parallel.serial`` timer were recorded.
        """
        tasks = self.counters.get("parallel.tasks", 0)
        elapsed = (self.timers.get("parallel.pool", 0.0)
                   + self.timers.get("parallel.serial", 0.0))
        if tasks <= 0 or elapsed <= 0.0:
            return None
        return tasks / elapsed

    def lint_throughput(self) -> Optional[float]:
        """Files linted per second of scan wall time, if measurable.

        Defined when ``repro lint`` recorded both the ``lint.files``
        counter and the ``lint.scan`` timer.
        """
        files = self.counters.get("lint.files", 0)
        elapsed = self.timers.get("lint.scan", 0.0)
        if files <= 0 or elapsed <= 0.0:
            return None
        return files / elapsed

    def kernel_throughput(self) -> Optional[float]:
        """Kernel lanes evaluated per second of batch wall time.

        Defined when the vectorized kernels recorded both the
        ``kernels.batch_size`` counter (total lanes across batches)
        and the ``kernels.batch`` timer.
        """
        lanes = self.counters.get("kernels.batch_size", 0)
        elapsed = self.timers.get("kernels.batch", 0.0)
        if lanes <= 0 or elapsed <= 0.0:
            return None
        return lanes / elapsed

    def format_footer(self,
                      extra: Optional[Mapping[str, int]] = None) -> str:
        """The ``--stats`` footer: wall time, quantiles, counters.

        ``extra`` appends caller-supplied integer rows (the CLI adds
        the resolved worker count).  The label column widens to the
        longest name so long metric names stay aligned.  Histograms
        render one p50/p95/p99 row each.
        """
        extra = dict(extra or {})
        hit_rate = self.cache_hit_rate()
        throughput = self.task_throughput()
        lint_rate = self.lint_throughput()
        kernel_rate = self.kernel_throughput()
        names = (list(self.timers) + list(self.counters)
                 + list(self.histograms) + list(extra))
        if hit_rate is not None:
            names.append("cache hit rate")
        if throughput is not None:
            names.append("parallel.throughput")
        if lint_rate is not None:
            names.append("lint.throughput")
        if kernel_rate is not None:
            names.append("kernels.throughput")
        width = max([_FOOTER_MIN_WIDTH] + [len(name) for name in names])

        lines = ["-- runtime stats --"]
        for name in sorted(self.timers):
            lines.append(f"  {name:<{width}} {self.timers[name]:9.3f} s")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            if histogram.count == 0:
                continue
            p50 = histogram.quantile(0.5)
            p95 = histogram.quantile(0.95)
            p99 = histogram.quantile(0.99)
            lines.append(
                f"  {name:<{width}} p50 {p50:.3e}  p95 {p95:.3e}  "
                f"p99 {p99:.3e}  ({histogram.count} obs)")
        if throughput is not None:
            lines.append(
                f"  {'parallel.throughput':<{width}} "
                f"{throughput:9.1f} tasks/s")
        if lint_rate is not None:
            lines.append(
                f"  {'lint.throughput':<{width}} "
                f"{lint_rate:9.1f} files/s")
        if kernel_rate is not None:
            lines.append(
                f"  {'kernels.throughput':<{width}} "
                f"{kernel_rate:9.1f} lanes/s")
        if hit_rate is not None:
            lines.append(
                f"  {'cache hit rate':<{width}} {hit_rate * 100:8.1f} % "
                f"({self.counters.get('cache.hit', 0)} hit / "
                f"{self.counters.get('cache.miss', 0)} miss)")
        for name in sorted(self.counters):
            if name in ("cache.hit", "cache.miss"):
                continue
            lines.append(f"  {name:<{width}} {self.counters[name]:9d}")
        for name, value in extra.items():
            lines.append(f"  {name:<{width}} {value:9d}")
        return "\n".join(lines)

    # -- OpenMetrics exposition -------------------------------------------

    def to_openmetrics(self) -> str:
        """The registry in OpenMetrics text exposition format.

        Counters become ``repro_<name>_total``, timers become
        ``repro_<name>_seconds_total``, histograms become full
        ``_bucket``/``_sum``/``_count`` series with cumulative ``le``
        buckets (only populated edges are emitted; ``le="+Inf"``
        always is).  Ends with the mandatory ``# EOF`` terminator.
        """
        lines: List[str] = []
        for name in sorted(self.counters):
            metric = _openmetrics_name(name)
            lines.append(f"# HELP {metric} "
                         f"{_escape_help('counter ' + name)}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total "
                         f"{_format_value(self.counters[name])}")
        for name in sorted(self.timers):
            metric = _openmetrics_name(name) + "_seconds"
            lines.append(
                f"# HELP {metric} "
                f"{_escape_help('accumulated wall time of ' + name)}")
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total "
                         f"{_format_value(self.timers[name])}")
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            metric = _openmetrics_name(name)
            lines.append(f"# HELP {metric} "
                         f"{_escape_help('distribution of ' + name)}")
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for index in sorted(histogram.counts):
                if index >= _OVERFLOW_BUCKET:
                    continue
                cumulative += histogram.counts[index]
                edge = _format_value(HISTOGRAM_EDGES[index])
                lines.append(f'{metric}_bucket{{le="{edge}"}} '
                             f'{cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} '
                         f'{histogram.count}')
            lines.append(f"{metric}_sum "
                         f"{_format_value(histogram.sum)}")
            lines.append(f"{metric}_count {histogram.count}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"


def _openmetrics_name(name: str) -> str:
    """A dotted metric name as a legal OpenMetrics metric name."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _escape_help(text: str) -> str:
    """HELP-line escaping per the exposition format (\\ and newline)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: Any) -> str:
    """Sample values rendered shortest-round-trip (ints stay ints)."""
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


#: The process-wide registry.
METRICS = MetricsRegistry()
