"""Process-wide metrics: named counters and wall-time accumulators.

:class:`MetricsRegistry` is the aggregation point every layer records
into — cache traffic, parallel task counts, synthesis rejection
reasons, per-phase wall time.  A single process-wide :data:`METRICS`
registry serves the whole process; worker processes record into their
own (reset per chunk) and :func:`repro.runtime.parallel.parallel_map`
merges the serialized payloads back into the parent, so ``--stats``
totals are identical for any worker count.

The registry subsumes the original ad-hoc ``STATS`` object;
:mod:`repro.runtime.stats` re-exports :data:`METRICS` under its old
name as a compatibility facade.

Recording is cheap enough to stay always-on (two dict operations); the
CLI's ``--stats`` flag merely decides whether the footer is printed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional

#: Minimum label column width of the ``--stats`` footer.  Longer metric
#: names widen the column for the whole footer instead of breaking the
#: alignment.
_FOOTER_MIN_WIDTH = 24


class MetricsRegistry:
    """Named counters and wall-time accumulators."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.timers: Dict[str, float] = {}

    # -- recording --------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    # -- cross-process aggregation ----------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A picklable/JSON-safe snapshot (what workers send back)."""
        return {"counters": dict(self.counters),
                "timers": dict(self.timers)}

    def merge_payload(self, payload: Mapping[str, Any]) -> None:
        """Fold a :meth:`to_payload` snapshot into this registry."""
        for name, amount in payload.get("counters", {}).items():
            self.count(name, amount)
        for name, seconds in payload.get("timers", {}).items():
            self.add_time(name, seconds)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_payload(other.to_payload())

    # -- derived ----------------------------------------------------------

    def cache_hit_rate(self) -> Optional[float]:
        """Disk-cache hit fraction, or ``None`` before any lookup."""
        hits = self.counters.get("cache.hit", 0)
        misses = self.counters.get("cache.miss", 0)
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def fault_counters(self) -> Dict[str, int]:
        """The ``faults.*`` family: injections, crashes, recoveries.

        Sorted by name so manifests and reports render stably.  Empty
        for a clean run — the common case — which lets callers elide
        the whole block.
        """
        return {name: self.counters[name]
                for name in sorted(self.counters)
                if name.startswith("faults.")}

    def task_throughput(self) -> Optional[float]:
        """Parallel tasks per second of map wall time, if measurable.

        Defined when both the ``parallel.tasks`` counter and a matching
        ``parallel.pool`` / ``parallel.serial`` timer were recorded.
        """
        tasks = self.counters.get("parallel.tasks", 0)
        elapsed = (self.timers.get("parallel.pool", 0.0)
                   + self.timers.get("parallel.serial", 0.0))
        if tasks <= 0 or elapsed <= 0.0:
            return None
        return tasks / elapsed

    def lint_throughput(self) -> Optional[float]:
        """Files linted per second of scan wall time, if measurable.

        Defined when ``repro lint`` recorded both the ``lint.files``
        counter and the ``lint.scan`` timer.
        """
        files = self.counters.get("lint.files", 0)
        elapsed = self.timers.get("lint.scan", 0.0)
        if files <= 0 or elapsed <= 0.0:
            return None
        return files / elapsed

    def kernel_throughput(self) -> Optional[float]:
        """Kernel lanes evaluated per second of batch wall time.

        Defined when the vectorized kernels recorded both the
        ``kernels.batch_size`` counter (total lanes across batches)
        and the ``kernels.batch`` timer.
        """
        lanes = self.counters.get("kernels.batch_size", 0)
        elapsed = self.timers.get("kernels.batch", 0.0)
        if lanes <= 0 or elapsed <= 0.0:
            return None
        return lanes / elapsed

    def format_footer(self,
                      extra: Optional[Mapping[str, int]] = None) -> str:
        """The ``--stats`` footer: wall time, cache traffic, counters.

        ``extra`` appends caller-supplied integer rows (the CLI adds
        the resolved worker count).  The label column widens to the
        longest name so long metric names stay aligned.
        """
        extra = dict(extra or {})
        hit_rate = self.cache_hit_rate()
        throughput = self.task_throughput()
        lint_rate = self.lint_throughput()
        kernel_rate = self.kernel_throughput()
        names = list(self.timers) + list(self.counters) + list(extra)
        if hit_rate is not None:
            names.append("cache hit rate")
        if throughput is not None:
            names.append("parallel.throughput")
        if lint_rate is not None:
            names.append("lint.throughput")
        if kernel_rate is not None:
            names.append("kernels.throughput")
        width = max([_FOOTER_MIN_WIDTH] + [len(name) for name in names])

        lines = ["-- runtime stats --"]
        for name in sorted(self.timers):
            lines.append(f"  {name:<{width}} {self.timers[name]:9.3f} s")
        if throughput is not None:
            lines.append(
                f"  {'parallel.throughput':<{width}} "
                f"{throughput:9.1f} tasks/s")
        if lint_rate is not None:
            lines.append(
                f"  {'lint.throughput':<{width}} "
                f"{lint_rate:9.1f} files/s")
        if kernel_rate is not None:
            lines.append(
                f"  {'kernels.throughput':<{width}} "
                f"{kernel_rate:9.1f} lanes/s")
        if hit_rate is not None:
            lines.append(
                f"  {'cache hit rate':<{width}} {hit_rate * 100:8.1f} % "
                f"({self.counters.get('cache.hit', 0)} hit / "
                f"{self.counters.get('cache.miss', 0)} miss)")
        for name in sorted(self.counters):
            if name in ("cache.hit", "cache.miss"):
                continue
            lines.append(f"  {name:<{width}} {self.counters[name]:9d}")
        for name, value in extra.items():
            lines.append(f"  {name:<{width}} {value:9d}")
        return "\n".join(lines)


#: The process-wide registry.
METRICS = MetricsRegistry()
