"""Deterministic fault injection for the runtime's failure paths.

A production-scale sweep runs for hours across many worker processes;
the failure modes that matter — a worker OOM-killed mid-chunk, a cache
file half-written by a crashed process, a straggler chunk — are rare
and timing-dependent, which makes the *recovery* code the least tested
code in the tree.  This module turns those failures into deterministic,
scriptable events so chaos tests (and the CI ``chaos-smoke`` job) can
pin down the recovery behaviour exactly:

* ``worker_crash`` — the pool worker executing a chosen chunk dies
  abruptly (``os._exit``), which the parent observes as a
  ``BrokenProcessPool``.  :func:`repro.runtime.parallel.parallel_map`
  must recover by re-running the unfinished chunks on the serial path
  and produce bit-identical results.
* ``slow_chunk`` — the worker executing a chosen chunk sleeps first,
  simulating a straggler without changing any result.
* ``cache_corrupt`` — a chosen :meth:`repro.runtime.cache.DiskCache.put`
  leaves garbage bytes on disk, which the next ``get`` must quarantine
  (rename to ``*.quarantine``) and report as a miss.

Faults are addressed by *site ordinal*, never by wall clock or chance,
so an injected run is exactly reproducible: ``worker_crash@chunk=1``
always kills the worker that picks up chunk 1, ``cache_corrupt@put=2``
always corrupts the third write of the process.

Activation is either environment-driven (the ``REPRO_FAULTS`` spec,
e.g. ``REPRO_FAULTS="worker_crash@chunk=0;cache_corrupt@put=1"``) or
programmatic via the :func:`inject` context manager used by the chaos
tests.  Worker-side faults ride to the pool inside the chunk payloads,
so they work under any multiprocessing start method; they fire *only*
inside pool workers, never on the serial (recovery) path — which is
what makes crash-then-recover terminate.

Everything the harness triggers, and everything the runtime survives,
is counted under the ``faults.*`` metrics family (surfaced by
``--stats`` and recorded in the run manifest):

* ``faults.injected.<kind>`` — injections that actually fired;
* ``faults.worker_crash`` — ``BrokenProcessPool`` events survived;
* ``faults.pool_retry`` — pool rebuilds before the serial fallback;
* ``faults.recovered_chunks`` / ``faults.recovered_tasks`` — work
  re-run serially after a mid-run crash;
* ``faults.cache_quarantined`` — corrupt cache entries set aside;
* ``faults.cache_degraded`` — cache writes disabled for the process
  after a disk-full/read-only failure.

This module is the *only* sanctioned nondeterminism hook outside the
observability layer (``repro lint``'s determinism rule allows clocks
here and nowhere else in the runtime's compute paths).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple

from repro.runtime.metrics import METRICS

#: Fault kinds the harness can trigger.
KINDS = ("worker_crash", "slow_chunk", "cache_corrupt")

#: Kinds that execute inside pool workers (shipped with chunk payloads).
WORKER_KINDS = ("worker_crash", "slow_chunk")

#: Default straggler delay (seconds) when a ``slow_chunk`` spec does
#: not say otherwise.
DEFAULT_SLOW_DELAY = 0.01

#: Exit status of an injected worker crash — ``os._exit`` so no
#: ``finally`` blocks or atexit handlers soften the death.
CRASH_EXIT_CODE = 70

#: The site-ordinal parameter each kind is addressed by.
_SITE_PARAM = {"worker_crash": "chunk",
               "slow_chunk": "chunk",
               "cache_corrupt": "put"}


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic injection point.

    ``at`` is the site ordinal the fault fires on: the chunk index for
    worker faults, the 0-based put ordinal for ``cache_corrupt``.
    ``delay`` (seconds) is meaningful for ``slow_chunk`` only.
    """

    kind: str
    at: int = 0
    delay: float = DEFAULT_SLOW_DELAY

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.at < 0:
            raise ValueError("fault site ordinal must be >= 0")
        if self.delay < 0:
            raise ValueError("slow_chunk delay must be >= 0")


def parse_spec(text: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` spec string.

    Grammar: semicolon-separated entries, each
    ``<kind>[@<param>=<value>[,<param>=<value>...]]`` with ``chunk=N``
    for worker faults, ``put=N`` for cache faults and ``delay=S`` for
    ``slow_chunk``.  Malformed specs raise :class:`ValueError` loudly —
    a chaos run with a mistyped fault must not silently run clean.
    """
    specs: List[FaultSpec] = []
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        kind, _, params_text = entry.partition("@")
        kind = kind.strip()
        if kind not in KINDS:
            raise ValueError(f"unknown fault kind {kind!r} in "
                             f"REPRO_FAULTS entry {entry!r}; expected "
                             f"one of {KINDS}")
        at = 0
        delay = DEFAULT_SLOW_DELAY
        for pair in filter(None, (p.strip()
                                  for p in params_text.split(","))):
            name, separator, value = pair.partition("=")
            name = name.strip()
            if not separator:
                raise ValueError(f"fault parameter {pair!r} is not "
                                 f"name=value (entry {entry!r})")
            if name == _SITE_PARAM[kind]:
                try:
                    at = int(value.strip())
                except ValueError as exc:
                    raise ValueError(
                        f"fault site {pair!r} must be an integer "
                        f"(entry {entry!r})") from exc
            elif name == "delay" and kind == "slow_chunk":
                try:
                    delay = float(value.strip())
                except ValueError as exc:
                    raise ValueError(
                        f"fault delay {pair!r} must be a number "
                        f"(entry {entry!r})") from exc
            else:
                raise ValueError(
                    f"fault kind {kind!r} does not take parameter "
                    f"{name!r} (entry {entry!r}); it is addressed by "
                    f"{_SITE_PARAM[kind]!r}")
        specs.append(FaultSpec(kind=kind, at=at, delay=delay))
    return tuple(specs)


#: Specs added programmatically via :func:`inject` (tests).
_INJECTED: List[FaultSpec] = []

#: Process-wide ordinal of cache writes, tracked only while a
#: ``cache_corrupt`` spec is active.
_PUT_ORDINAL = 0


def active_specs() -> Tuple[FaultSpec, ...]:
    """Every active fault: ``inject``-ed ones plus the env spec."""
    env = os.environ.get("REPRO_FAULTS", "").strip()
    return tuple(_INJECTED) + (parse_spec(env) if env else ())


def worker_faults(
        specs: "Sequence[FaultSpec] | None" = None
) -> Tuple[FaultSpec, ...]:
    """The subset of faults that ship to pool workers with each chunk."""
    if specs is None:
        specs = active_specs()
    return tuple(spec for spec in specs if spec.kind in WORKER_KINDS)


@contextmanager
def inject(kind: str, *, at: int = 0,
           delay: float = DEFAULT_SLOW_DELAY) -> Iterator[FaultSpec]:
    """Activate one fault for the duration of the ``with`` block.

    The chaos-test API: ``with faults.inject("worker_crash", at=1):``
    arms the fault, and leaving the block disarms it (and rewinds the
    cache put ordinal so successive tests see a fresh site space).
    """
    spec = FaultSpec(kind=kind, at=at, delay=delay)
    _INJECTED.append(spec)
    try:
        yield spec
    finally:
        _INJECTED.remove(spec)
        if kind == "cache_corrupt":
            _reset_put_ordinal()


def clear() -> None:
    """Disarm every injected fault and rewind site ordinals (tests)."""
    del _INJECTED[:]
    _reset_put_ordinal()


def _reset_put_ordinal() -> None:
    global _PUT_ORDINAL
    _PUT_ORDINAL = 0


# ---------------------------------------------------------------------------
# Firing points (called by repro.runtime.parallel / repro.runtime.cache)
# ---------------------------------------------------------------------------


def fire_chunk_faults(specs: Sequence[FaultSpec],
                      chunk_index: int) -> None:
    """Worker-side firing point, invoked at the top of each chunk.

    Only :func:`repro.runtime.parallel._run_chunk` calls this, and only
    with the specs that rode in on the chunk payload — the serial and
    recovery paths never do, so an injected crash cannot kill the
    parent process that is recovering from it.
    """
    for spec in specs:
        if spec.at != chunk_index:
            continue
        if spec.kind == "slow_chunk":
            METRICS.count("faults.injected.slow_chunk")
            time.sleep(spec.delay)
        elif spec.kind == "worker_crash":
            # Abrupt death: no cleanup, no result, no metrics payload —
            # exactly what an OOM kill looks like to the parent.
            os._exit(CRASH_EXIT_CODE)


def maybe_corrupt_write(path: Path) -> bool:
    """Cache-side firing point, invoked after each successful put.

    When a ``cache_corrupt`` spec is armed, the put whose process-wide
    ordinal matches ``at`` gets its just-written file replaced with
    undecodable garbage; returns whether this write was corrupted.
    """
    global _PUT_ORDINAL
    specs = [spec for spec in active_specs()
             if spec.kind == "cache_corrupt"]
    if not specs:
        return False
    ordinal = _PUT_ORDINAL
    _PUT_ORDINAL += 1
    if not any(spec.at == ordinal for spec in specs):
        return False
    # Not JSON, not UTF-8: exercises the harshest decode path.
    path.write_bytes(b"\x00\xffcorrupt\x00")
    METRICS.count("faults.injected.cache_corrupt")
    return True
