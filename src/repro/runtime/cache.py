"""Versioned persistent cache for expensive derived artifacts.

Link designs and calibration coefficients are pure functions of
(technology, model, configuration) — ideal cache material, but until
now they were memoized per-process only, so every CLI invocation and
every pool worker rebuilt them from scratch.  :class:`DiskCache` stores
them as small JSON files:

    <cache root>/<namespace>/<key hash>.json

* **Root** — ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``.
* **Key** — a SHA-256 :func:`fingerprint` of a canonical JSON rendering
  of the key object; dataclasses (class name + fields), enums and
  containers are canonicalized recursively, so *any* change to the
  technology, model coefficients or wire configuration changes the key.
* **Versioned envelope** — every file records the cache schema version,
  an environment salt (:func:`environment_salt`, e.g. the numpy
  version) and the full key; a version/salt mismatch, key-hash
  collision or corrupt file is treated as a miss and silently
  rewritten, never an error.
* **Atomic writes** — payloads land via ``os.replace`` of a temp file,
  so concurrent workers can share one cache directory.

Lookups honour the global kill switches (``--no-cache`` via
:func:`repro.runtime.configure`, or ``REPRO_NO_CACHE=1``): when the
cache is disabled neither reads nor writes touch the filesystem.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.runtime.metrics import METRICS

#: Bump when the on-disk payload schema changes; older files are then
#: ignored and transparently rewritten.
CACHE_VERSION = 1


def environment_salt() -> "dict[str, str]":
    """Environment facts cached payloads may depend on.

    Numeric payloads flow through the vectorized kernels, so a numpy
    upgrade (new ufunc implementations, different pow/SIMD paths) can
    legitimately change cached values in the last ulp.  Folding the
    numpy version into every envelope invalidates such payloads across
    upgrades instead of serving stale ulps forever.
    """
    import numpy
    return {"numpy": numpy.__version__}


def cache_dir() -> Path:
    """The cache root (not created until something is written)."""
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def _canonical(value: Any) -> Any:
    """A JSON-stable rendering of key material.

    Restricted to the types key objects are actually built from;
    anything exotic is rejected loudly rather than hashed ambiguously.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {field.name: _canonical(getattr(value, field.name))
                  for field in dataclasses.fields(value)}
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__,
                "value": _canonical(value.value)}
    if isinstance(value, dict):
        return {str(key): _canonical(entry)
                for key, entry in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(entry) for entry in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot fingerprint a {type(value).__name__} cache key")


def fingerprint(value: Any) -> str:
    """Stable SHA-256 hex digest of any canonicalizable key object."""
    rendering = json.dumps(_canonical(value), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()


class DiskCache:
    """One namespace of the persistent cache.

    ``get``/``put`` exchange JSON-serializable payloads; the caller owns
    the payload schema (and should bump ``version`` when changing it).
    """

    def __init__(self, namespace: str, version: int = CACHE_VERSION,
                 directory: Optional[Path] = None,
                 salt: "Optional[dict[str, str]]" = None):
        if not namespace or "/" in namespace:
            raise ValueError("namespace must be a plain name")
        self.namespace = namespace
        self.version = version
        self.salt = environment_salt() if salt is None else salt
        self._directory = directory

    @property
    def directory(self) -> Path:
        if self._directory is not None:
            return self._directory / self.namespace
        return cache_dir() / self.namespace

    def _enabled(self) -> bool:
        from repro import runtime
        return runtime.cache_enabled()

    def path_for(self, key: Any) -> Path:
        return self.directory / f"{fingerprint(key)}.json"

    def _count(self, outcome: str, kind: Optional[str]) -> None:
        """Aggregate plus attributed counters for one lookup outcome.

        ``cache.hit`` / ``cache.miss`` stay the totals the hit-rate is
        computed from; ``cache.<outcome>.<namespace>[.<kind>]`` says
        *which* cache population the traffic belongs to.
        """
        METRICS.count(f"cache.{outcome}")
        suffix = (f"{self.namespace}.{kind}" if kind
                  else self.namespace)
        METRICS.count(f"cache.{outcome}.{suffix}")

    # -- access -----------------------------------------------------------

    def get(self, key: Any, kind: Optional[str] = None) -> Optional[Any]:
        """The cached payload for ``key``, or ``None`` on any miss.

        Unreadable, corrupt, version-mismatched or colliding entries
        are all reported as misses; the next ``put`` rewrites them.
        ``kind`` labels the key population (e.g. ``"design"`` vs
        ``"max_length"``) in the attributed hit/miss counters.
        """
        if not self._enabled():
            return None
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            if (envelope.get("version") != self.version
                    or envelope.get("salt") != self.salt
                    or envelope.get("key") != _canonical(key)):
                raise ValueError("stale or colliding cache entry")
            payload = envelope["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            self._count("miss", kind)
            return None
        self._count("hit", kind)
        return payload

    def put(self, key: Any, payload: Any,
            kind: Optional[str] = None) -> None:
        """Persist ``payload`` under ``key`` (atomic, best-effort)."""
        if not self._enabled():
            return
        envelope = {
            "version": self.version,
            "salt": self.salt,
            "key": _canonical(key),
            "payload": payload,
        }
        directory = self.directory
        try:
            directory.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=directory,
                suffix=".tmp", delete=False)
            with handle:
                json.dump(envelope, handle)
            os.replace(handle.name, self.path_for(key))
            self._count("write", kind)
        except OSError:
            # A read-only or full cache directory must never fail the
            # computation that produced the payload.
            METRICS.count("cache.write_failed")
