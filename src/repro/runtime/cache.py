"""Versioned persistent cache for expensive derived artifacts.

Link designs and calibration coefficients are pure functions of
(technology, model, configuration) — ideal cache material, but until
now they were memoized per-process only, so every CLI invocation and
every pool worker rebuilt them from scratch.  :class:`DiskCache` stores
them as small JSON files:

    <cache root>/<namespace>/<key hash>.json

* **Root** — ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``.
* **Key** — a SHA-256 :func:`fingerprint` of a canonical JSON rendering
  of the key object; dataclasses (class name + fields), enums and
  containers are canonicalized recursively, so *any* change to the
  technology, model coefficients or wire configuration changes the key.
* **Versioned envelope** — every file records the cache schema version,
  an environment salt (:func:`environment_salt`, e.g. the numpy
  version) and the full key; a version/salt mismatch or key-hash
  collision is treated as a miss and rewritten by the next ``put``,
  never an error.
* **Quarantine, not silence** — an *undecodable* entry (garbage bytes,
  a truncated write, a non-envelope document) is evidence of a crash
  or disk fault, so it is set aside as ``<key hash>.quarantine`` for
  post-mortems and counted under ``faults.cache_quarantined``; the
  lookup reports a miss and the recomputed value is written freshly.
* **Atomic writes** — payloads land via ``os.replace`` of a temp file
  named ``<key hash>.<pid>.<token>.tmp`` (unique per writer process by
  construction, ``O_EXCL``-guarded against pid-reuse collisions), so
  *independent processes* — pool workers, serve shards, concurrent CLI
  runs — can share one cache directory; a failed write removes its
  temp file instead of littering the cache root.
* **Degraded mode** — a disk-full or read-only root disables writes
  for the rest of the process (one :class:`RuntimeWarning`, a
  ``faults.cache_degraded`` count); computations proceed cache-less
  instead of failing or retrying a dead disk on every put.

Lookups honour the global kill switches (``--no-cache`` via
:func:`repro.runtime.configure`, or ``REPRO_NO_CACHE=1``): when the
cache is disabled neither reads nor writes touch the filesystem.
"""

from __future__ import annotations

import dataclasses
import enum
import errno
import hashlib
import itertools
import json
import os
import time
import warnings
from pathlib import Path
from typing import Any, Optional

from repro.runtime import faults
from repro.runtime.metrics import METRICS

#: Bump when the on-disk payload schema changes; older files are then
#: ignored and transparently rewritten.
CACHE_VERSION = 1

#: Write failures with these errnos mean the *root* is unusable (full
#: or read-only), not that one entry hiccuped — they degrade the cache
#: to read-only for the rest of the process.
_DEGRADE_ERRNOS = frozenset(
    code for code in (errno.ENOSPC, errno.EROFS, errno.EACCES,
                      errno.EPERM, getattr(errno, "EDQUOT", None))
    if code is not None)

#: True once a degrading write failure disabled writes process-wide.
_WRITES_DISABLED = False

#: Per-process ordinal folded into every temp-file name.  Together
#: with the pid it makes temp names unique across *independent
#: processes* sharing one cache root (serve shards, pool workers,
#: concurrent CLI runs), not merely within one process — two writers
#: racing on the same key each write their own temp file and the two
#: ``os.replace`` calls serialize to a last-writer-wins full envelope,
#: never an interleaved partial write.
_TMP_TOKENS = itertools.count()


def writes_disabled() -> bool:
    """Whether a disk-full/read-only root has disabled cache writes."""
    return _WRITES_DISABLED


def _create_exclusive(path: Path) -> int:
    """Create ``path`` exclusively for writing; the disk-fault seam."""
    return os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)


def reset_degradation() -> None:
    """Re-enable cache writes (tests; a real process stays degraded)."""
    global _WRITES_DISABLED
    _WRITES_DISABLED = False


def _note_write_failure(exc: OSError) -> None:
    """Count a failed write; degrade the cache on root-level faults."""
    global _WRITES_DISABLED
    METRICS.count("cache.write_failed")
    if exc.errno in _DEGRADE_ERRNOS and not _WRITES_DISABLED:
        _WRITES_DISABLED = True
        METRICS.count("faults.cache_degraded")
        warnings.warn(
            f"disk cache degraded to read-only for this process "
            f"({exc}); computations continue uncached",
            RuntimeWarning, stacklevel=4)


def environment_salt() -> "dict[str, str]":
    """Environment facts cached payloads may depend on.

    Numeric payloads flow through the vectorized kernels, so a numpy
    upgrade (new ufunc implementations, different pow/SIMD paths) can
    legitimately change cached values in the last ulp.  Folding the
    numpy version into every envelope invalidates such payloads across
    upgrades instead of serving stale ulps forever.
    """
    import numpy
    return {"numpy": numpy.__version__}


def cache_dir() -> Path:
    """The cache root (not created until something is written)."""
    override = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro"


def _canonical(value: Any) -> Any:
    """A JSON-stable rendering of key material.

    Restricted to the types key objects are actually built from;
    anything exotic is rejected loudly rather than hashed ambiguously.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {field.name: _canonical(getattr(value, field.name))
                  for field in dataclasses.fields(value)}
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__,
                "value": _canonical(value.value)}
    if isinstance(value, dict):
        return {str(key): _canonical(entry)
                for key, entry in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(entry) for entry in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot fingerprint a {type(value).__name__} cache key")


def fingerprint(value: Any) -> str:
    """Stable SHA-256 hex digest of any canonicalizable key object."""
    rendering = json.dumps(_canonical(value), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()


class DiskCache:
    """One namespace of the persistent cache.

    ``get``/``put`` exchange JSON-serializable payloads; the caller owns
    the payload schema (and should bump ``version`` when changing it).
    """

    def __init__(self, namespace: str, version: int = CACHE_VERSION,
                 directory: Optional[Path] = None,
                 salt: "Optional[dict[str, str]]" = None):
        if not namespace or "/" in namespace:
            raise ValueError("namespace must be a plain name")
        self.namespace = namespace
        self.version = version
        self.salt = environment_salt() if salt is None else salt
        self._directory = directory

    @property
    def directory(self) -> Path:
        if self._directory is not None:
            return self._directory / self.namespace
        return cache_dir() / self.namespace

    def _enabled(self) -> bool:
        from repro import runtime
        return runtime.cache_enabled()

    def path_for(self, key: Any) -> Path:
        return self.directory / f"{fingerprint(key)}.json"

    def _count(self, outcome: str, kind: Optional[str]) -> None:
        """Aggregate plus attributed counters for one lookup outcome.

        ``cache.hit`` / ``cache.miss`` stay the totals the hit-rate is
        computed from; ``cache.<outcome>.<namespace>[.<kind>]`` says
        *which* cache population the traffic belongs to.
        """
        METRICS.count(f"cache.{outcome}")
        suffix = (f"{self.namespace}.{kind}" if kind
                  else self.namespace)
        METRICS.count(f"cache.{outcome}.{suffix}")

    def _quarantine(self, path: Path) -> None:
        """Set a corrupt entry aside as ``*.quarantine`` for forensics.

        Renaming (never deleting) keeps the evidence of what went
        wrong on disk while guaranteeing the poisoned bytes cannot be
        decoded again; the recomputed payload lands on the original
        path.  A root where even the rename fails simply keeps the
        entry — it stays a miss either way.
        """
        try:
            os.replace(path, path.with_suffix(".quarantine"))
        except OSError:
            return
        METRICS.count("faults.cache_quarantined")
        METRICS.count(f"faults.cache_quarantined.{self.namespace}")

    # -- access -----------------------------------------------------------

    def get(self, key: Any, kind: Optional[str] = None) -> Optional[Any]:
        """The cached payload for ``key``, or ``None`` on any miss.

        A version/salt mismatch or key collision is an expected miss
        (the next ``put`` rewrites the entry).  An *undecodable* entry
        — unparseable bytes, a non-envelope document, a truncated
        envelope — is quarantined (see :meth:`_quarantine`) before the
        miss is reported.  ``kind`` labels the key population (e.g.
        ``"design"`` vs ``"max_length"``) in the attributed hit/miss
        counters.  Lookup wall time (hit or miss) feeds the per-kind
        ``cache.lookup_seconds.<namespace>[.<kind>]`` histograms.
        """
        if not self._enabled():
            return None
        started = time.perf_counter()
        try:
            return self._lookup(key, kind)
        finally:
            suffix = (f"{self.namespace}.{kind}" if kind
                      else self.namespace)
            METRICS.observe_keyed("cache.lookup_seconds", suffix,
                                  time.perf_counter() - started)

    def _lookup(self, key: Any, kind: Optional[str]) -> Optional[Any]:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except OSError:
            self._count("miss", kind)
            return None
        except (ValueError, UnicodeDecodeError):
            # Garbage bytes or malformed JSON: a crashed writer or a
            # disk fault, not a schema evolution.
            self._quarantine(path)
            self._count("miss", kind)
            return None
        if not isinstance(envelope, dict):
            self._quarantine(path)
            self._count("miss", kind)
            return None
        if (envelope.get("version") != self.version
                or envelope.get("salt") != self.salt
                or envelope.get("key") != _canonical(key)):
            self._count("miss", kind)
            return None
        if "payload" not in envelope:
            # Version, salt and key all match but the payload is gone:
            # a truncated write, not a stale schema.
            self._quarantine(path)
            self._count("miss", kind)
            return None
        self._count("hit", kind)
        return envelope["payload"]

    def put(self, key: Any, payload: Any,
            kind: Optional[str] = None) -> None:
        """Persist ``payload`` under ``key`` (atomic, best-effort)."""
        if not self._enabled() or _WRITES_DISABLED:
            return
        envelope = {
            "version": self.version,
            "salt": self.salt,
            "key": _canonical(key),
            "payload": payload,
        }
        directory = self.directory
        target = self.path_for(key)
        # The temp name carries the target's key hash (for forensics),
        # the writer's pid and a per-process token: unique by
        # construction across concurrent writer *processes*, where the
        # previous tempfile-module naming relied on a per-process RNG
        # whose state is inherited across fork.  O_EXCL turns any
        # remaining collision (pid reuse against a crashed writer's
        # leftover) into a caught OSError instead of two processes
        # interleaving writes into one file.
        tmp = directory / (f"{target.stem}.{os.getpid()}."
                           f"{next(_TMP_TOKENS)}.tmp")
        try:
            directory.mkdir(parents=True, exist_ok=True)
            fd = _create_exclusive(tmp)
        except OSError as exc:
            # A read-only or full cache directory must never fail the
            # computation that produced the payload.
            _note_write_failure(exc)
            return
        try:
            with open(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle)
            os.replace(tmp, target)
        except BaseException as exc:
            # Whatever went wrong, the temp file must not stay behind
            # in the shared cache directory.
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                _note_write_failure(exc)
                return
            raise  # caller bugs (e.g. unserializable payload) stay loud
        self._count("write", kind)
        faults.maybe_corrupt_write(target)
