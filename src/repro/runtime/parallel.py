"""Deterministic process-pool execution with a serial fallback.

:func:`parallel_map` is the one parallel primitive every workload uses.
Its contract:

* **Order-preserving** — results come back in input order, always.
* **Deterministic chunking** — items are split into contiguous chunks
  whose boundaries depend only on ``len(items)``, ``workers`` and
  ``chunk``, never on scheduling.
* **Serial fallback** — ``workers=1`` (or ``REPRO_WORKERS=1``, or a
  single item) runs the plain in-process loop, and any environment
  where a process pool cannot start degrades to the same path rather
  than crashing.
* **Crash recovery** — a worker that dies mid-run (segfault, OOM kill,
  an injected ``worker_crash`` fault) surfaces as a
  ``BrokenProcessPool``; instead of aborting the workload, the
  unfinished chunks are re-run — on a rebuilt pool while ``--max-
  retries`` attempts remain, then on the serial path — so the result
  list is bit-identical to a clean run.  Recoveries are counted under
  the ``faults.*`` metrics family (``faults.worker_crash``,
  ``faults.pool_retry``, ``faults.recovered_chunks/tasks``).
* **Diagnosable failures** — an exception raised by ``fn`` for one
  item is wrapped in :class:`TaskError` naming the workload label, the
  item index and the chunk it ran in, so one bad draw out of 10k is
  locatable from the traceback alone.
* **Observability round-trip** — each worker records into its own
  metrics registry (and, when the parent is tracing, its own span
  collector); the payloads ride back with the results, metrics merge
  into the parent registry and spans are spliced under the dispatching
  ``parallel.map`` span.  ``--stats`` totals and traces are therefore
  complete for any worker count.
* **No nested pools** — inside a worker, :func:`resolve_workers`
  always answers 1, so a parallelized workload that itself calls
  ``parallel_map`` runs that inner loop serially instead of forking a
  pool per worker.

Because callables and items cross a process boundary, ``fn`` must be a
module-level function and the items picklable — every workload in this
repository passes plain frozen dataclasses.

Randomness: workloads never share one generator across tasks.  Instead
:func:`spawn_seed_sequences` derives one independent
:class:`numpy.random.SeedSequence` child per task, so each task's
stream is identical whether it runs serially, or on any worker of any
pool — the determinism contract the equivalence tests pin down.  The
same property is what makes crash recovery exact: re-running a chunk
walks the very streams the dead worker would have walked.
"""

from __future__ import annotations

import math
import time
import zlib
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime import faults, trace
from repro.runtime.metrics import METRICS

#: True inside a pool worker — makes nested parallelism collapse to
#: the serial path instead of spawning pools from pool workers.
_IN_WORKER = False


class TaskError(RuntimeError):
    """One item of a :func:`parallel_map` workload failed.

    Carries enough context to locate the failure in a large sweep:
    the workload ``label`` (callers pass one; the callable's name
    otherwise), the ``item_index`` into the original sequence, and the
    ``chunk_index`` it was dispatched in (``None`` on the serial
    path).  The original exception is summarized in ``cause_summary``
    and chained as ``__cause__`` within the raising process; the
    summary survives the pickle across the pool boundary, where
    ``__cause__`` does not.
    """

    def __init__(self, label: str, item_index: int,
                 chunk_index: Optional[int], cause_summary: str):
        # Positional args keep the default exception pickling
        # (``(cls, self.args)``) working across the pool boundary.
        super().__init__(label, item_index, chunk_index, cause_summary)
        self.label = label
        self.item_index = item_index
        self.chunk_index = chunk_index
        self.cause_summary = cause_summary

    def __str__(self) -> str:
        where = ("the serial path" if self.chunk_index is None
                 else f"chunk {self.chunk_index}")
        return (f"item {self.item_index} of {self.label!r} failed on "
                f"{where}: {self.cause_summary}")


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count for a workload.

    Resolution order: the worker-process guard (always serial inside a
    pool worker), the explicit argument, the :func:`configure` override
    (CLI ``--workers``), the ``REPRO_WORKERS`` environment variable,
    then 1 (serial).  ``workers=0`` or a negative request is an error;
    the special value ``None`` means "use the defaults".
    """
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if _IN_WORKER:
        return 1
    if workers is not None:
        return workers
    from repro import runtime
    configured = runtime.configured_workers()
    if configured is not None:
        return configured
    env = runtime.env_int("REPRO_WORKERS")
    if env is not None:
        if env < 1:
            raise ValueError("REPRO_WORKERS must be >= 1")
        return env
    return 1


def resolve_max_retries(max_retries: Optional[int] = None) -> int:
    """Pool rebuild attempts after a mid-run worker crash.

    Resolution order: the explicit argument, the :func:`configure`
    override (CLI ``--max-retries``), the ``REPRO_MAX_RETRIES``
    environment variable, then 0 — by default a crash degrades
    straight to the deterministic serial re-run of the unfinished
    chunks.
    """
    if max_retries is not None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        return max_retries
    from repro import runtime
    configured = runtime.configured_max_retries()
    if configured is not None:
        return configured
    env = runtime.env_int("REPRO_MAX_RETRIES")
    if env is not None:
        if env < 0:
            raise ValueError("REPRO_MAX_RETRIES must be >= 0")
        return env
    return 0


def _apply_items(fn: Callable[[Any], Any], items: Sequence[Any], *,
                 label: str, start: int,
                 chunk_index: Optional[int]) -> List[Any]:
    """``[fn(x) for x in items]`` with :class:`TaskError` wrapping.

    ``start`` is the offset of ``items[0]`` in the original sequence,
    so the wrapped error names the global item index.  Each item's
    wall time feeds the ``parallel.task_seconds`` histogram, the
    distribution behind the ``--stats`` p50/p95/p99 task rows.
    """
    results: List[Any] = []
    for offset, item in enumerate(items):
        started = time.perf_counter()
        try:
            result = fn(item)
        except TaskError:
            raise  # nested parallel_map already attributed it
        except Exception as exc:
            raise TaskError(label, start + offset, chunk_index,
                            f"{type(exc).__name__}: {exc}") from exc
        METRICS.observe("parallel.task_seconds",
                        time.perf_counter() - started)
        results.append(result)
    return results


#: (fn, chunk items, capture trace?, chunk index, start offset,
#:  workload label, worker-side fault specs)
_ChunkPayload = Tuple[Callable[[Any], Any], List[Any], bool, int, int,
                      str, Tuple[faults.FaultSpec, ...]]
_ChunkResult = Tuple[List[Any], dict, List[trace.Event]]


def _run_chunk(payload: _ChunkPayload) -> _ChunkResult:
    """Worker-side body: apply ``fn`` to one contiguous chunk.

    The worker's registry is reset first (pool workers are reused
    across chunks and, under ``fork``, inherit the parent's totals),
    so the returned payload is exactly this chunk's contribution.
    Trace capture ends in the ``finally`` block: a chunk whose ``fn``
    raises must not leave the reused worker in capture mode, or every
    later chunk on that worker would leak its spans into a dead
    collector.
    """
    global _IN_WORKER
    fn, chunk, capture_trace, chunk_index, start, label, specs \
        = payload
    _IN_WORKER = True
    METRICS.reset()
    collector = trace.begin_worker_capture() if capture_trace else None
    events: List[trace.Event] = []
    try:
        faults.fire_chunk_faults(specs, chunk_index)
        with trace.span("parallel.chunk", items=len(chunk),
                        chunk=chunk_index):
            results = _apply_items(fn, chunk, label=label, start=start,
                                   chunk_index=chunk_index)
    finally:
        _IN_WORKER = False
        if collector is not None:
            events = trace.end_worker_capture(collector)
    return results, METRICS.to_payload(), events


def new_pool(workers: int, chunks: Optional[int] = None
             ) -> Optional[ProcessPoolExecutor]:
    """A worker pool, or ``None`` where pools cannot start.

    The one place process pools are built (``parallel_map`` and the
    ``repro serve`` shards both come through here): restricted
    environments (no /dev/shm, no fork) answer ``None`` and count
    ``parallel.pool_unavailable`` so callers degrade to their serial
    path instead of crashing.  ``chunks`` caps the pool size at the
    number of work units when known."""
    if chunks is not None:
        workers = min(workers, chunks)
    try:
        return ProcessPoolExecutor(max_workers=workers)
    except (OSError, PermissionError, NotImplementedError):
        METRICS.count("parallel.pool_unavailable")
        return None


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: Optional[int] = None,
    chunk: Optional[int] = None,
    label: Optional[str] = None,
    max_retries: Optional[int] = None,
) -> List[Any]:
    """``[fn(x) for x in items]``, possibly across worker processes.

    ``chunk`` is the number of items handed to a worker at once; by
    default the items are split evenly, one chunk per worker.  The
    chunking (and therefore any chunk-indexed seeding done by the
    caller) is a pure function of the inputs.

    ``label`` names the workload in :class:`TaskError` diagnostics
    (defaults to the callable's name).  ``max_retries`` bounds pool
    rebuilds after a mid-run worker death before the remaining chunks
    re-run serially (see :func:`resolve_max_retries`); either way the
    results are bit-identical to a clean run.
    """
    items = list(items)
    workers = resolve_workers(workers)
    max_retries = resolve_max_retries(max_retries)
    if chunk is not None and chunk < 1:
        raise ValueError("chunk must be >= 1")
    if label is None:
        label = getattr(fn, "__qualname__", None) or repr(fn)
    # Parse (and thereby validate) any armed fault spec up front: a
    # malformed REPRO_FAULTS must fail loudly even on the serial
    # path, never silently disable the chaos that was asked for.
    worker_specs = faults.worker_faults()
    METRICS.count("parallel.tasks", len(items))
    if workers <= 1 or len(items) <= 1:
        with METRICS.timer("parallel.serial"):
            return _apply_items(fn, items, label=label, start=0,
                                chunk_index=None)

    if chunk is None:
        chunk = max(1, math.ceil(len(items) / workers))
    starts = list(range(0, len(items), chunk))
    chunks = [items[start:start + chunk] for start in starts]
    pool = new_pool(workers, len(chunks))
    if pool is None:
        # Restricted environments fall back to the serial path
        # instead of failing the workload.
        with METRICS.timer("parallel.serial"):
            return _apply_items(fn, items, label=label, start=0,
                                chunk_index=None)

    capture_trace = trace.TRACER.enabled
    results: List[Any] = []
    done = 0        # chunks fully collected, in order
    retries = 0
    with trace.span("parallel.map", tasks=len(items), workers=workers,
                    chunks=len(chunks)) as dispatch, \
            METRICS.timer("parallel.pool"):
        while pool is not None:
            payloads = [(fn, chunks[index], capture_trace, index,
                         starts[index], label, worker_specs)
                        for index in range(done, len(chunks))]
            try:
                with pool:
                    for chunk_results, metrics_payload, events \
                            in pool.map(_run_chunk, payloads):
                        results.extend(chunk_results)
                        METRICS.merge_payload(metrics_payload)
                        trace.TRACER.splice_payload(
                            events, parent_id=dispatch.span_id)
                        done += 1
                pool = None
            except BrokenProcessPool:
                # A worker died mid-run (segfault, OOM kill, injected
                # crash).  Everything already collected is in order;
                # re-dispatch the rest on a fresh pool while retries
                # remain, then degrade to the serial path below.
                METRICS.count("faults.worker_crash")
                dispatch.count("worker_crashes")
                if retries < max_retries:
                    retries += 1
                    METRICS.count("faults.pool_retry")
                    pool = new_pool(workers, len(chunks) - done)
                else:
                    pool = None
        if done < len(chunks):
            METRICS.count("faults.recovered_chunks",
                          len(chunks) - done)
            METRICS.count("faults.recovered_tasks",
                          sum(len(part) for part in chunks[done:]))
            dispatch.annotate(recovered_chunks=len(chunks) - done)
            for index in range(done, len(chunks)):
                # Deterministic re-run: fn is pure per item and any
                # RNG stream is task-owned, so the serial replay of an
                # unfinished chunk reproduces the dead worker's
                # results bit-for-bit.  Injection points never fire
                # here (fire_chunk_faults is worker-only).
                with trace.span("parallel.recover",
                                chunk=index,
                                items=len(chunks[index])):
                    results.extend(_apply_items(
                        fn, chunks[index], label=label,
                        start=starts[index], chunk_index=index))
    return results


def spawn_seed_sequences(seed: int, count: int
                         ) -> List[np.random.SeedSequence]:
    """``count`` independent child sequences of a root seed.

    Child ``i`` is the same object no matter how the tasks are later
    chunked or scheduled, which is what makes parallel Monte-Carlo
    reproduce the serial stream exactly.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return list(np.random.SeedSequence(seed).spawn(count))


def spawn_generators(seed: int, count: int
                     ) -> List[np.random.Generator]:
    """One independent :class:`numpy.random.Generator` per task."""
    return [np.random.default_rng(seq)
            for seq in spawn_seed_sequences(seed, count)]


def spawn_labeled_sequences(seed: int, label: str, count: int
                            ) -> List[np.random.SeedSequence]:
    """``count`` child sequences of a *labeled* root seed.

    A workload that needs auxiliary streams next to its per-task
    streams (a model-engine pre-pass, per-lane Sobol scrambling keys)
    must not consume children of the plain ``SeedSequence(seed)`` root
    — that root's child ``i`` is contractually the stream of task
    ``i``.  Deriving the root entropy as ``(seed, crc32(label))``
    keeps every labeled family independent of the task streams and of
    each other, while staying a pure function of ``(seed, label)`` so
    the determinism contract (any ``workers`` count, crash recovery)
    holds for the auxiliary draws too.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    key = zlib.crc32(label.encode("utf-8"))
    return list(np.random.SeedSequence([seed, key]).spawn(count))
