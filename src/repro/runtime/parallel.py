"""Deterministic process-pool execution with a serial fallback.

:func:`parallel_map` is the one parallel primitive every workload uses.
Its contract:

* **Order-preserving** — results come back in input order, always.
* **Deterministic chunking** — items are split into contiguous chunks
  whose boundaries depend only on ``len(items)``, ``workers`` and
  ``chunk``, never on scheduling.
* **Serial fallback** — ``workers=1`` (or ``REPRO_WORKERS=1``, or a
  single item) runs the plain list comprehension in-process, and any
  environment where a process pool cannot start degrades to the same
  path rather than crashing.
* **Observability round-trip** — each worker records into its own
  metrics registry (and, when the parent is tracing, its own span
  collector); the payloads ride back with the results, metrics merge
  into the parent registry and spans are spliced under the dispatching
  ``parallel.map`` span.  ``--stats`` totals and traces are therefore
  complete for any worker count.
* **No nested pools** — inside a worker, :func:`resolve_workers`
  always answers 1, so a parallelized workload that itself calls
  ``parallel_map`` runs that inner loop serially instead of forking a
  pool per worker.

Because callables and items cross a process boundary, ``fn`` must be a
module-level function and the items picklable — every workload in this
repository passes plain frozen dataclasses.

Randomness: workloads never share one generator across tasks.  Instead
:func:`spawn_seed_sequences` derives one independent
:class:`numpy.random.SeedSequence` child per task, so each task's
stream is identical whether it runs serially, or on any worker of any
pool — the determinism contract the equivalence tests pin down.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.runtime import trace
from repro.runtime.metrics import METRICS

#: True inside a pool worker — makes nested parallelism collapse to
#: the serial path instead of spawning pools from pool workers.
_IN_WORKER = False


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count for a workload.

    Resolution order: the worker-process guard (always serial inside a
    pool worker), the explicit argument, the :func:`configure` override
    (CLI ``--workers``), the ``REPRO_WORKERS`` environment variable,
    then 1 (serial).  ``workers=0`` or a negative request is an error;
    the special value ``None`` means "use the defaults".
    """
    if workers is not None and workers < 1:
        raise ValueError("workers must be >= 1")
    if _IN_WORKER:
        return 1
    if workers is not None:
        return workers
    from repro import runtime
    configured = runtime.configured_workers()
    if configured is not None:
        return configured
    env = os.environ.get("REPRO_WORKERS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError as exc:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {env!r}") from exc
        if value < 1:
            raise ValueError("REPRO_WORKERS must be >= 1")
        return value
    return 1


_ChunkPayload = Tuple[Callable[[Any], Any], List[Any], bool]
_ChunkResult = Tuple[List[Any], dict, List[trace.Event]]


def _run_chunk(payload: _ChunkPayload) -> _ChunkResult:
    """Worker-side body: apply ``fn`` to one contiguous chunk.

    The worker's registry is reset first (pool workers are reused
    across chunks and, under ``fork``, inherit the parent's totals),
    so the returned payload is exactly this chunk's contribution.
    """
    global _IN_WORKER
    fn, chunk, capture_trace = payload
    _IN_WORKER = True
    METRICS.reset()
    collector = trace.begin_worker_capture() if capture_trace else None
    try:
        with trace.span("parallel.chunk", items=len(chunk)):
            results = [fn(item) for item in chunk]
    finally:
        _IN_WORKER = False
    events = (trace.end_worker_capture(collector)
              if collector is not None else [])
    return results, METRICS.to_payload(), events


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    *,
    workers: Optional[int] = None,
    chunk: Optional[int] = None,
) -> List[Any]:
    """``[fn(x) for x in items]``, possibly across worker processes.

    ``chunk`` is the number of items handed to a worker at once; by
    default the items are split evenly, one chunk per worker.  The
    chunking (and therefore any chunk-indexed seeding done by the
    caller) is a pure function of the inputs.
    """
    items = list(items)
    workers = resolve_workers(workers)
    if chunk is not None and chunk < 1:
        raise ValueError("chunk must be >= 1")
    METRICS.count("parallel.tasks", len(items))
    if workers <= 1 or len(items) <= 1:
        with METRICS.timer("parallel.serial"):
            return [fn(item) for item in items]

    if chunk is None:
        chunk = max(1, math.ceil(len(items) / workers))
    chunks = [items[start:start + chunk]
              for start in range(0, len(items), chunk)]
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(chunks)))
    except (OSError, PermissionError, NotImplementedError):
        # Restricted environments (no /dev/shm, no fork) fall back to
        # the serial path instead of failing the workload.
        METRICS.count("parallel.pool_unavailable")
        with METRICS.timer("parallel.serial"):
            return [fn(item) for item in items]

    capture_trace = trace.TRACER.enabled
    payloads = [(fn, part, capture_trace) for part in chunks]
    results: List[Any] = []
    with trace.span("parallel.map", tasks=len(items), workers=workers,
                    chunks=len(chunks)) as dispatch, \
            METRICS.timer("parallel.pool"), pool:
        for chunk_results, metrics_payload, events \
                in pool.map(_run_chunk, payloads):
            results.extend(chunk_results)
            METRICS.merge_payload(metrics_payload)
            trace.TRACER.splice_payload(events,
                                        parent_id=dispatch.span_id)
    return results


def spawn_seed_sequences(seed: int, count: int
                         ) -> List[np.random.SeedSequence]:
    """``count`` independent child sequences of a root seed.

    Child ``i`` is the same object no matter how the tasks are later
    chunked or scheduled, which is what makes parallel Monte-Carlo
    reproduce the serial stream exactly.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return list(np.random.SeedSequence(seed).spawn(count))


def spawn_generators(seed: int, count: int
                     ) -> List[np.random.Generator]:
    """One independent :class:`numpy.random.Generator` per task."""
    return [np.random.default_rng(seq)
            for seq in spawn_seed_sequences(seed, count)]
