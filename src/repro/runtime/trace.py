"""Hierarchical span tracing with pluggable sinks.

A *span* is a named, timed region of work with attributes and
span-local counters::

    from repro.runtime import span

    with span("noc.synthesize", node="65nm") as sp:
        ...
        sp.count("flows.routed")
        sp.annotate(links=12)

Spans nest: the tracer keeps the active-span stack, so a span opened
inside another records the outer one as its parent.  Each span emits
two events — ``B`` (begin) at entry with the initial attributes and
``E`` (end) at exit with the final attribute/counter set — to every
attached :class:`SpanSink`.

**Always-on-cheap**: with no sink attached, :meth:`Tracer.span`
returns one shared no-op context manager — no event, no ``Span``
object, no sink call is ever allocated, so instrumentation can stay in
hot paths unconditionally.

Sinks:

* :class:`SpanCollector` — in-memory event list (tests, worker
  processes);
* :class:`JsonlSink` — one JSON object per line (the CLI ``--trace``
  file), convertible to the Chrome ``chrome://tracing`` format by
  :func:`export_chrome_trace`.

**Worker propagation**: ``parallel_map`` workers call
:func:`begin_worker_capture` / :func:`end_worker_capture` around each
chunk; the collected events travel back with the results and the
parent splices them under its dispatching span via
:meth:`Tracer.splice_payload`, which re-allocates span ids in the
parent's id space so a trace file's ids are globally unique.

Timestamps are ``time.perf_counter()`` seconds.  On Linux that clock
is ``CLOCK_MONOTONIC``, which is shared across processes of one boot,
so spliced worker spans line up with parent spans; on platforms where
the clock is per-process only the *durations* remain meaningful.

The tracer is deliberately not thread-safe: the runtime parallelizes
with processes, and each process owns its own :data:`TRACER`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Iterable, List, Optional, Union

Event = Dict[str, Any]


# ---------------------------------------------------------------------------
# Sinks
# ---------------------------------------------------------------------------


class SpanCollector:
    """In-memory sink: keeps every event in arrival order."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def to_payload(self) -> List[Event]:
        """The collected events as a picklable list (for workers)."""
        return list(self.events)


class JsonlSink:
    """Streams events to a file, one JSON object per line."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._handle: Optional[IO[str]] = open(self.path, "w",
                                               encoding="utf-8")

    def emit(self, event: Event) -> None:
        if self._handle is None:
            return
        json.dump(event, self._handle, separators=(",", ":"))
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------


class Span:
    """One live traced region.  Created only when a sink is attached."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "args",
                 "started")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.args = attributes
        self.started = 0.0

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes; they appear on the span's end event."""
        self.args.update(attributes)

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a span-local counter (an integer attribute)."""
        self.args[name] = self.args.get(name, 0) + amount

    def __enter__(self) -> "Span":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer._exit(self)
        return False


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    span_id: Optional[int] = None
    parent_id: Optional[int] = None

    def annotate(self, **attributes: Any) -> None:
        pass

    def count(self, name: str, amount: int = 1) -> None:
        pass


class _NullSpanContext:
    """Shared no-op context manager: zero allocation per span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class Tracer:
    """Owns the sink list, the active-span stack and id allocation."""

    def __init__(self) -> None:
        self._sinks: List[Any] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._profiler: Optional[Any] = None

    # -- sink management --------------------------------------------------

    @property
    def enabled(self) -> bool:
        return bool(self._sinks)

    def add_sink(self, sink: Any) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Attach (or with ``None`` detach) a span profiler.

        A profiler receives ``on_enter(span)`` / ``on_exit(span)``
        callbacks around every live span — ``on_exit`` fires *before*
        the end event is built, so attributes the profiler annotates
        (e.g. tracemalloc deltas) land on the span's E event.  Spans
        are live whenever a profiler is attached, even with no sink.
        """
        self._profiler = profiler

    def clear(self) -> None:
        """Drop sinks, profiler and any dangling stack (tests,
        workers)."""
        self._sinks = []
        self._stack = []
        self._profiler = None

    # -- spans ------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """A context manager for one traced region.

        With no sink and no profiler attached this returns a shared
        no-op object — the disabled path allocates nothing.
        """
        if not self._sinks and self._profiler is None:
            return _NULL_CONTEXT
        return Span(self, name, attributes)

    def current(self):
        """The innermost active span (the null span when none is)."""
        return self._stack[-1] if self._stack else NULL_SPAN

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _emit(self, event: Event) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def _enter(self, span: Span) -> None:
        span.span_id = self._allocate_id()
        span.parent_id = (self._stack[-1].span_id if self._stack
                          else None)
        span.started = time.perf_counter()
        self._stack.append(span)
        self._emit({"ph": "B", "name": span.name, "span": span.span_id,
                    "parent": span.parent_id, "pid": os.getpid(),
                    "ts": span.started, "args": dict(span.args)})
        if self._profiler is not None:
            self._profiler.on_enter(span)

    def _exit(self, span: Span) -> None:
        if self._profiler is not None:
            self._profiler.on_exit(span)
        if span in self._stack:
            # Tolerate mis-nested exits instead of corrupting the stack.
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        event: Event = {"ph": "E", "name": span.name,
                        "span": span.span_id, "pid": os.getpid(),
                        "ts": time.perf_counter()}
        if span.args:
            event["args"] = dict(span.args)
        self._emit(event)

    # -- cross-process splicing -------------------------------------------

    def splice_payload(self, events: Iterable[Event],
                       parent_id: Optional[int] = None) -> None:
        """Re-emit a worker's captured events under ``parent_id``.

        Worker span ids are local to the worker process; splicing maps
        them into this tracer's id space and re-parents the worker's
        root spans to the dispatching span, so the merged stream forms
        one well-nested tree.
        """
        if not self._sinks:
            return
        mapping: Dict[Any, int] = {}
        for event in events:
            remapped = dict(event)
            original = event.get("span")
            if original not in mapping:
                mapping[original] = self._allocate_id()
            remapped["span"] = mapping[original]
            if event.get("ph") == "B":
                original_parent = event.get("parent")
                if original_parent is None:
                    remapped["parent"] = parent_id
                else:
                    remapped["parent"] = mapping.get(original_parent,
                                                     parent_id)
            self._emit(remapped)


#: The process-wide tracer.
TRACER = Tracer()


def span(name: str, **attributes: Any):
    """``TRACER.span`` shorthand — the one import most callers need."""
    return TRACER.span(name, **attributes)


def current_span():
    return TRACER.current()


# ---------------------------------------------------------------------------
# Worker-side capture (used by repro.runtime.parallel)
# ---------------------------------------------------------------------------


def begin_worker_capture() -> SpanCollector:
    """Point the worker's tracer at a fresh in-memory collector.

    Forked workers inherit the parent's sink list — including any open
    ``--trace`` file handle, which must not be written from two
    processes.  Capture therefore *replaces* the sinks with one
    collector whose events travel back to the parent by value.
    """
    TRACER.clear()
    collector = SpanCollector()
    TRACER.add_sink(collector)
    return collector


def end_worker_capture(collector: SpanCollector) -> List[Event]:
    """Detach the capture collector and return its events."""
    TRACER.remove_sink(collector)
    return collector.to_payload()


# ---------------------------------------------------------------------------
# Trace-file reading, validation and summarizing (``repro report``)
# ---------------------------------------------------------------------------


def read_trace(path: Union[str, Path]) -> List[Event]:
    """Parse a JSONL trace file.

    Raises :class:`ValueError` on an unparseable line; structural
    problems (unmatched spans) are reported by
    :func:`summarize_trace` instead, so a truncated-but-valid file can
    still be summarized.
    """
    events: List[Event] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{number}: not valid JSON: {exc}") from exc
            if not isinstance(event, dict) or "ph" not in event:
                raise ValueError(
                    f"{path}:{number}: not a trace event")
            events.append(event)
    return events


@dataclass
class SpanAggregate:
    """Accumulated timing of every span sharing one name."""

    name: str
    calls: int = 0
    total: float = 0.0       # s, inclusive of children
    self_time: float = 0.0   # s, exclusive

    @property
    def child_time(self) -> float:
        return self.total - self.self_time


@dataclass
class TraceSummary:
    """Per-span-name timing rollup of one trace file."""

    aggregates: Dict[str, SpanAggregate] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    events: int = 0

    @property
    def well_formed(self) -> bool:
        return not self.errors

    def format(self) -> str:
        width = max([24] + [len(name) for name in self.aggregates])
        lines = [
            f"{'span':<{width}} {'calls':>7} {'total s':>10} "
            f"{'self s':>10} {'child s':>10}",
        ]
        ordered = sorted(self.aggregates.values(),
                         key=lambda agg: agg.self_time, reverse=True)
        for agg in ordered:
            lines.append(
                f"{agg.name:<{width}} {agg.calls:7d} "
                f"{agg.total:10.3f} {agg.self_time:10.3f} "
                f"{agg.child_time:10.3f}")
        lines.append(f"{self.events} events, "
                     f"{len(self.aggregates)} span names")
        for error in self.errors:
            lines.append(f"WARNING: {error}")
        return "\n".join(lines)


def summarize_events(events: Iterable[Event]) -> TraceSummary:
    """Pair B/E events into spans and aggregate self/child time."""
    summary = TraceSummary()
    # span id -> [name, parent id, begin ts, accumulated child time]
    open_spans: Dict[Any, List[Any]] = {}
    for event in events:
        summary.events += 1
        phase = event.get("ph")
        span_id = event.get("span")
        if phase == "B":
            if span_id in open_spans:
                summary.errors.append(
                    f"span {span_id} begun twice")
                continue
            open_spans[span_id] = [event.get("name", "?"),
                                   event.get("parent"),
                                   event.get("ts", 0.0), 0.0]
        elif phase == "E":
            entry = open_spans.pop(span_id, None)
            if entry is None:
                summary.errors.append(
                    f"end event for unknown span {span_id} "
                    f"({event.get('name', '?')})")
                continue
            name, parent_id, begin_ts, child_time = entry
            duration = max(0.0, event.get("ts", begin_ts) - begin_ts)
            aggregate = summary.aggregates.setdefault(
                name, SpanAggregate(name=name))
            aggregate.calls += 1
            aggregate.total += duration
            aggregate.self_time += max(0.0, duration - child_time)
            if parent_id in open_spans:
                open_spans[parent_id][3] += duration
        else:
            summary.errors.append(
                f"unknown event phase {phase!r}")
    for span_id, (name, _parent, _ts, _child) in open_spans.items():
        summary.errors.append(
            f"span {span_id} ({name}) has no end event")
    return summary


def summarize_trace(path: Union[str, Path]) -> TraceSummary:
    return summarize_events(read_trace(path))


def export_chrome_trace(events: Iterable[Event],
                        path: Union[str, Path]) -> None:
    """Write the events as a ``chrome://tracing`` JSON array."""
    converted = []
    for event in events:
        phase = event.get("ph")
        if phase not in ("B", "E"):
            continue
        entry = {
            "name": event.get("name", "?"),
            "ph": phase,
            "ts": event.get("ts", 0.0) * 1e6,   # Chrome wants us
            "pid": event.get("pid", 0),
            "tid": event.get("pid", 0),
        }
        if event.get("args"):
            entry["args"] = event["args"]
        converted.append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": converted}, handle)
