"""Run manifests: the provenance record written next to artifacts.

Every traced CLI run emits a ``manifest.json`` beside its trace file
answering "exactly what produced this artifact?": the subcommand and
its full argument set, a stable hash of that configuration, the
package/python versions, the numerical environment (numpy and BLAS,
which decide the kernels' code paths), the effective worker count and
cache state, the RNG seed when the workload has one, and the per-phase
wall-time and counter totals accumulated by the metrics registry.

Runs that survived faults carry a dedicated ``faults`` block — the
``faults.*`` counter family (worker crashes recovered, cache entries
quarantined, injected faults fired; see :mod:`repro.runtime.faults`) —
so an artifact produced by a degraded run is distinguishable from a
clean one without diffing the full counter map.

The schema is versioned (:data:`MANIFEST_SCHEMA`); consumers should
treat unknown fields as forward-compatible additions.
"""

from __future__ import annotations

import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.runtime.cache import fingerprint
from repro.runtime.metrics import METRICS, MetricsRegistry

#: Bump when the manifest layout changes incompatibly.
MANIFEST_SCHEMA = 1


def utc_timestamp() -> str:
    """The current UTC time as an ISO-8601 string.

    Provenance timestamping belongs to this module: wall clocks are
    banned everywhere else (``repro lint``'s determinism rule), so
    callers that need a run's start time take it from here.
    """
    return datetime.now(timezone.utc).isoformat()


def environment_info() -> Dict[str, Any]:
    """Numerical-environment facts that can change results in the ulps.

    Records the numpy version and, when the build metadata exposes it,
    the BLAS implementation — the two knobs that decide which SIMD /
    library code paths the vectorized kernels execute.
    """
    import numpy
    info: Dict[str, Any] = {"numpy": numpy.__version__}
    try:
        build = numpy.show_config(mode="dicts")
        blas = build["Build Dependencies"]["blas"]
        info["blas"] = {"name": blas.get("name", "unknown"),
                        "version": str(blas.get("version", "unknown"))}
    except Exception:
        # Older numpy without dict-mode show_config, or an unexpected
        # metadata layout: the numpy version alone is still useful.
        pass
    return info


def run_environment() -> Dict[str, Any]:
    """The full environment block benchmark records embed.

    Python and platform identity on top of :func:`environment_info` —
    the one shape ``BENCH_kernels.json``, ``BENCH_yield.json`` and the
    benchmark registry history all share, so records are comparable
    (and env-keyable) across every writer.
    """
    return {
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        **environment_info(),
    }


def _json_safe(value: Any) -> Any:
    """Arguments as JSON values; anything exotic degrades to ``repr``."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(entry) for entry in value]
    if isinstance(value, Mapping):
        return {str(key): _json_safe(entry)
                for key, entry in value.items()}
    return repr(value)


#: Named blocks commands attach to the manifest of the run in flight
#: (e.g. the ``lut_drift`` block from ``repro luts check``); consumed
#: by the next :func:`build_manifest` call in this process.
_EXTRA_BLOCKS: Dict[str, Any] = {}


def record_block(name: str, payload: Any) -> None:
    """Attach a named block to the next manifest built here.

    The payload passes through :func:`_json_safe`; recording the same
    name twice keeps the latest payload.  Core manifest keys win over
    recorded blocks, so a block cannot shadow e.g. ``counters``.
    """
    _EXTRA_BLOCKS[name] = _json_safe(payload)


def consume_blocks() -> Dict[str, Any]:
    """Drain the recorded blocks (used by :func:`build_manifest`)."""
    blocks = dict(_EXTRA_BLOCKS)
    _EXTRA_BLOCKS.clear()
    return blocks


def build_manifest(
    command: str,
    config: Mapping[str, Any],
    *,
    workers: int,
    cache_enabled: bool,
    wall_seconds: float,
    started_at: str,
    registry: Optional[MetricsRegistry] = None,
    trace_file: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble the manifest dictionary for one finished run.

    ``config`` is the full argument set of the run (for the CLI, the
    parsed namespace minus internals); its fingerprint is the run's
    ``config_hash``, so two manifests with equal hashes describe the
    same requested computation.
    """
    if registry is None:
        registry = METRICS
    safe_config = {key: _json_safe(value)
                   for key, value in sorted(config.items())}
    from repro import __version__
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "config": safe_config,
        "config_hash": fingerprint(safe_config),
        "package_version": __version__,
        "python_version": sys.version.split()[0],
        "platform": platform.platform(),
        "workers": workers,
        "cache_enabled": cache_enabled,
        "environment": environment_info(),
        "started_at": started_at,
        "wall_seconds": wall_seconds,
        "phases": dict(registry.timers),
        "counters": dict(registry.counters),
    }
    for name, payload in consume_blocks().items():
        manifest.setdefault(name, payload)
    fault_counters = registry.fault_counters()
    if fault_counters:
        manifest["faults"] = fault_counters
    histograms = registry.histogram_summaries()
    if histograms:
        manifest["histograms"] = histograms
    if "seed" in safe_config:
        manifest["seed"] = safe_config["seed"]
    if trace_file is not None:
        manifest["trace_file"] = trace_file
    return manifest


def write_manifest(path: Union[str, Path],
                   manifest: Mapping[str, Any]) -> Path:
    """Write ``manifest`` as pretty-printed JSON; returns the path."""
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def manifest_path_for(trace_path: Union[str, Path]) -> Path:
    """Where the manifest belongs: next to the trace file."""
    return Path(trace_path).parent / "manifest.json"
