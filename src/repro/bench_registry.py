"""Benchmark registry: env-keyed history + noise-aware regression diff.

``repro bench`` and ``repro bench yield`` historically wrote one-shot
``BENCH_*.json`` snapshots — a perf *point*, not a trajectory.  The
registry turns every bench run into an appended record in
``benchmarks/results/history.jsonl`` (one JSON object per line, append
only), and ``repro bench diff`` compares the latest record against a
reference with a noise-aware threshold, giving CI an actual perf gate.

Each record carries:

* ``suite`` — ``"kernels"`` or ``"yield"``;
* ``env`` / ``env_key`` — the shared environment block from
  :func:`repro.runtime.manifest.run_environment` and its fingerprint,
  so records from different machines/toolchains never get compared as
  if they were the same population;
* ``config`` / ``config_hash`` — the bench's full parameter set and
  the same :func:`repro.runtime.cache.fingerprint` hash manifests use,
  which is what links a history record to the ``manifest.json`` of the
  run that produced it;
* ``samples`` — named ``(value, se, n)`` measurements (seconds, lower
  is better).  The standard errors come from the per-rep timing
  histograms (:class:`repro.runtime.metrics.Histogram`), so the diff
  can ask "is this slowdown outside the noise?" instead of comparing
  bare means.

The regression rule: a sample regresses when its ratio to the
reference exceeds ``1 + rel_threshold`` *and* the absolute slowdown
exceeds ``noise_z`` combined standard errors.  With no recorded SEs
(single-rep benches) the noise gate degrades to the plain relative
threshold.  Samples whose workload size ``n`` differs from the
reference are skipped, not compared — a ``--quick`` run is a different
workload, not a regression.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Dict, List, Mapping, Optional, Sequence,
                    Union)

#: Bump when the history-record layout changes incompatibly.
REGISTRY_SCHEMA = 1

#: Where bench runs append their records (relative to the repo root /
#: current working directory).
DEFAULT_HISTORY = Path("benchmarks") / "results" / "history.jsonl"

#: Default regression gate: >20% slower than the reference.
DEFAULT_REL_THRESHOLD = 0.20

#: How many combined standard errors a slowdown must clear before it
#: counts as signal rather than timing noise.
DEFAULT_NOISE_Z = 3.0


@dataclass(frozen=True)
class BenchSample:
    """One named timing measurement (seconds, lower is better)."""

    name: str
    value: float
    se: float = 0.0
    n: int = 0

    def to_payload(self) -> Dict[str, Any]:
        return {"name": self.name, "value": self.value,
                "se": self.se, "n": self.n}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "BenchSample":
        return cls(name=str(payload["name"]),
                   value=float(payload["value"]),
                   se=float(payload.get("se", 0.0)),
                   n=int(payload.get("n", 0)))


def build_record(suite: str, *, node: str, quick: bool,
                 config: Mapping[str, Any],
                 samples: Sequence[BenchSample],
                 generated_at: Optional[str] = None) -> Dict[str, Any]:
    """Assemble one history record for a finished bench run."""
    from repro.runtime.cache import fingerprint
    from repro.runtime.manifest import run_environment, utc_timestamp

    env = run_environment()
    config = dict(config)
    return {
        "schema": REGISTRY_SCHEMA,
        "suite": suite,
        "generated_at": generated_at or utc_timestamp(),
        "node": node,
        "quick": quick,
        "env": env,
        "env_key": fingerprint(env),
        "config": config,
        "config_hash": fingerprint(config),
        "samples": [sample.to_payload() for sample in samples],
    }


def append_record(record: Mapping[str, Any],
                  history: Optional[Union[str, Path]] = None) -> Path:
    """Append ``record`` as one JSONL line; returns the history path."""
    path = Path(history) if history is not None else DEFAULT_HISTORY
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        json.dump(record, handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")
    return path


def load_history(history: Optional[Union[str, Path]] = None
                 ) -> List[Dict[str, Any]]:
    """Every record in the history file, oldest first.

    A missing file is an empty history; an unparseable line names its
    line number — an append-only log should never be half-garbage
    silently.
    """
    path = Path(history) if history is not None else DEFAULT_HISTORY
    if not path.exists():
        return []
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{number}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{number}: not a history record")
            records.append(record)
    return records


def latest_record(records: Sequence[Mapping[str, Any]], suite: str
                  ) -> Optional[Dict[str, Any]]:
    """The newest record of ``suite`` (appended last), if any."""
    for record in reversed(records):
        if record.get("suite") == suite:
            return dict(record)
    return None


def previous_record(records: Sequence[Mapping[str, Any]], suite: str
                    ) -> Optional[Dict[str, Any]]:
    """The newest same-suite, same-environment record *before* the
    latest one — what ``repro bench diff --against previous`` compares
    to.  Records from a different ``env_key`` are never offered as a
    comparison base."""
    latest = latest_record(records, suite)
    if latest is None:
        return None
    seen_latest = False
    for record in reversed(records):
        if record.get("suite") != suite:
            continue
        if not seen_latest:
            seen_latest = True
            continue
        if record.get("env_key") == latest.get("env_key"):
            return dict(record)
    return None


def record_samples(record: Mapping[str, Any]) -> List[BenchSample]:
    """The samples of one history record."""
    return [BenchSample.from_payload(entry)
            for entry in record.get("samples", [])]


def baseline_samples(report: Mapping[str, Any]) -> List[BenchSample]:
    """Samples extracted from a committed ``BENCH_*.json`` report.

    Handles both suite schemas: kernels entries (``op`` + per-path
    ``wall_s``/``wall_se``) become ``<op>.scalar`` / ``<op>.kernel``
    samples; yield entries (``estimator`` + ``wall_s``) become
    ``<estimator>.wall`` samples.  Reports written before the
    registry existed lack ``wall_se`` — their SEs read as zero.
    """
    samples: List[BenchSample] = []
    for entry in report.get("results", []):
        if "op" in entry:
            wall = entry.get("wall_s", {})
            se = entry.get("wall_se", {})
            for variant in ("scalar", "kernel"):
                if variant in wall:
                    samples.append(BenchSample(
                        name=f"{entry['op']}.{variant}",
                        value=float(wall[variant]),
                        se=float(se.get(variant, 0.0)),
                        n=int(entry.get("n", 0))))
        elif "estimator" in entry:
            samples.append(BenchSample(
                name=f"{entry['estimator']}.wall",
                value=float(entry.get("wall_s", 0.0)),
                se=0.0,
                n=int(entry.get("draws", 0))))
    return samples


@dataclass(frozen=True)
class DiffEntry:
    """One sample's comparison against the reference."""

    name: str
    current: float
    reference: float
    verdict: str        # "ok" | "regression" | "improved" | "skipped"
    detail: str = ""

    @property
    def ratio(self) -> float:
        if self.reference <= 0.0:
            return float("inf")
        return self.current / self.reference

    def format(self) -> str:
        if self.verdict == "skipped":
            return f"{self.name:<24} skipped ({self.detail})"
        return (f"{self.name:<24} {self.reference:9.4f} s -> "
                f"{self.current:9.4f} s  {self.ratio:6.2f}x "
                f"[{self.verdict}]"
                + (f" ({self.detail})" if self.detail else ""))


@dataclass
class DiffReport:
    """The full ``repro bench diff`` result for one suite."""

    suite: str
    entries: List[DiffEntry]
    reference_label: str = ""

    @property
    def regressions(self) -> List[DiffEntry]:
        return [entry for entry in self.entries
                if entry.verdict == "regression"]

    @property
    def compared(self) -> int:
        return sum(1 for entry in self.entries
                   if entry.verdict != "skipped")

    def format(self) -> str:
        lines = [f"-- bench diff: {self.suite} "
                 f"(vs {self.reference_label or 'reference'}) --"]
        lines.extend(entry.format() for entry in self.entries)
        if not self.entries:
            lines.append("no comparable samples")
        lines.append(f"{self.compared} compared, "
                     f"{len(self.regressions)} regression(s)")
        return "\n".join(lines)


def diff_samples(current: Sequence[BenchSample],
                 reference: Sequence[BenchSample], *,
                 rel_threshold: float = DEFAULT_REL_THRESHOLD,
                 noise_z: float = DEFAULT_NOISE_Z) -> List[DiffEntry]:
    """Compare samples pairwise by name with the noise-aware rule."""
    reference_by_name = {sample.name: sample for sample in reference}
    entries: List[DiffEntry] = []
    for sample in current:
        base = reference_by_name.get(sample.name)
        if base is None:
            entries.append(DiffEntry(sample.name, sample.value, 0.0,
                                     "skipped", "not in reference"))
            continue
        if base.n and sample.n and base.n != sample.n:
            entries.append(DiffEntry(
                sample.name, sample.value, base.value, "skipped",
                f"workload size differs (n={sample.n} vs {base.n})"))
            continue
        if base.value <= 0.0:
            entries.append(DiffEntry(sample.name, sample.value,
                                     base.value, "skipped",
                                     "non-positive reference"))
            continue
        ratio = sample.value / base.value
        noise = noise_z * math.sqrt(sample.se ** 2 + base.se ** 2)
        if ratio > 1.0 + rel_threshold \
                and (sample.value - base.value) > noise:
            entries.append(DiffEntry(sample.name, sample.value,
                                     base.value, "regression",
                                     f"> +{rel_threshold * 100:.0f}% "
                                     f"and > {noise_z:g} SE"))
        elif ratio < 1.0 - rel_threshold:
            entries.append(DiffEntry(sample.name, sample.value,
                                     base.value, "improved"))
        else:
            entries.append(DiffEntry(sample.name, sample.value,
                                     base.value, "ok"))
    return entries


def diff_latest(suite: str, *,
                history: Optional[Union[str, Path]] = None,
                baseline: Optional[Union[str, Path]] = None,
                against: str = "baseline",
                rel_threshold: float = DEFAULT_REL_THRESHOLD,
                noise_z: float = DEFAULT_NOISE_Z
                ) -> Optional[DiffReport]:
    """Diff the latest history record of ``suite`` against a reference.

    ``against="baseline"`` reads the committed ``BENCH_*.json``
    (``baseline`` overrides the per-suite default path);
    ``against="previous"`` uses the preceding same-environment history
    record.  Returns ``None`` when either side is missing — the CLI
    reports *which* side and exits with a usage error.
    """
    records = load_history(history)
    latest = latest_record(records, suite)
    if latest is None:
        return None
    if against == "previous":
        reference = previous_record(records, suite)
        if reference is None:
            return None
        reference_samples = record_samples(reference)
        label = f"previous record ({reference.get('generated_at')})"
    else:
        default = Path(f"BENCH_{suite}.json")
        path = Path(baseline) if baseline is not None else default
        if not path.exists():
            return None
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        reference_samples = baseline_samples(report)
        label = str(path)
    entries = diff_samples(record_samples(latest), reference_samples,
                           rel_threshold=rel_threshold,
                           noise_z=noise_z)
    return DiffReport(suite=suite, entries=entries,
                      reference_label=label)
