"""Per-file symbol extraction for the whole-program analysis pass.

One :class:`FileIndex` summarizes everything the interprocedural rules
need to know about a file *without* holding onto its AST: the
functions it defines (with parameter names, arithmetic-operation
multisets, numeric constants and nondeterminism taints), the imports
it binds, and every call site with its argument identifiers.  The
summary is plain JSON-serializable data, which is what makes the
incremental lint cache possible — a warm run deserializes indexes
instead of re-parsing sources.

Index entries are *module-qualified*: ``repro/kernels/wire.py`` indexes
as module ``repro.kernels.wire`` and its ``wire_delay`` as
``repro.kernels.wire.wire_delay``.  Files outside an importable root
(scripts, tests) get a dotted name derived from their path, so every
indexed file has a stable, unique module name.

:mod:`repro.analysis.graph` aggregates ``FileIndex`` objects into the
project-wide symbol table and call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the index payload layout (or what gets extracted into it)
#: changes; cached per-file indexes are invalidated by the bump.
INDEX_SCHEMA = 1

#: Arithmetic operators whose multiset the kernel-parity rule compares.
_ARITH_OPS = ("Add", "Sub", "Mult", "Div", "Pow", "FloorDiv", "Mod",
              "MatMult", "USub")

#: Calls that are arithmetic in disguise, canonicalized into the op
#: multiset so ``x ** a`` pairs with ``np.power(x, a)``, ``max`` with
#: ``np.maximum`` (elementwise — reductions like ``numpy.max`` are
#: deliberately absent), and ``sum(...)`` with a chain of ``+``.
#: ``numpy.clip`` expands to one Max and one Min.
_OP_CALLS: Dict[str, Tuple[str, ...]] = {
    "max": ("Max",), "min": ("Min",), "sum": ("Add",),
    "abs": ("Abs",), "pow": ("Pow",),
    "math.pow": ("Pow",), "math.sqrt": ("Sqrt",),
    "math.exp": ("Exp",), "math.log": ("Log",),
    "math.fabs": ("Abs",),
    "numpy.maximum": ("Max",), "numpy.minimum": ("Min",),
    "numpy.power": ("Pow",), "numpy.float_power": ("Pow",),
    "numpy.sqrt": ("Sqrt",), "numpy.exp": ("Exp",),
    "numpy.log": ("Log",), "numpy.abs": ("Abs",),
    "numpy.absolute": ("Abs",),
    "numpy.clip": ("Max", "Min"),
}

#: np.random attributes that are part of the sanctioned seeded API
#: (mirrors the determinism checker's list).
_SANCTIONED_NP_RANDOM = frozenset({
    "SeedSequence", "default_rng", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Methods that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear",
})

#: Constructor names whose module-level bindings count as mutable
#: globals (mirrors the cache-purity checker).
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque",
})


def module_name_for(path: str) -> str:
    """A stable dotted module name for ``path``.

    Paths under a ``src/`` root import as real modules
    (``src/repro/units.py`` → ``repro.units``); everything else maps
    its path components to a dotted name (``tests/analysis/test_core.py``
    → ``tests.analysis.test_core``), unique per file either way.
    """
    posix = path.replace("\\", "/")
    if posix.endswith(".py"):
        posix = posix[:-3]
    parts = [part for part in posix.split("/") if part not in (".", "")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:] or parts
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class Taint:
    """One nondeterministic access inside a function body."""

    kind: str       # "wall-clock" | "global-rng" | "env-read"
    #                 | "global-write"
    detail: str
    line: int

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "detail": self.detail,
                "line": self.line}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Taint":
        return cls(kind=payload["kind"], detail=payload["detail"],
                   line=int(payload["line"]))


@dataclass(frozen=True)
class CallArg:
    """One argument at a call site, reduced to its terminal identifier.

    ``position`` is the zero-based positional slot (``None`` for
    keywords); ``keyword`` the keyword name (``None`` positionally);
    ``name`` the terminal identifier of the argument expression
    (``None`` when the argument is not a name/attribute chain).
    """

    position: Optional[int]
    keyword: Optional[str]
    name: Optional[str]

    def to_payload(self) -> List[Any]:
        return [self.position, self.keyword, self.name]

    @classmethod
    def from_payload(cls, payload: List[Any]) -> "CallArg":
        return cls(position=payload[0], keyword=payload[1],
                   name=payload[2])


@dataclass(frozen=True)
class CallSite:
    """One call expression, as written (resolution happens later)."""

    caller: str     # in-module qualname of the enclosing function
    #                 ("" at module level)
    callee: str     # dotted source text ("krepeater.delay",
    #                 "parallel_map", "self.design")
    line: int
    col: int
    args: Tuple[CallArg, ...]

    def to_payload(self) -> Dict[str, Any]:
        return {"caller": self.caller, "callee": self.callee,
                "line": self.line, "col": self.col,
                "args": [arg.to_payload() for arg in self.args]}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "CallSite":
        return cls(caller=payload["caller"], callee=payload["callee"],
                   line=int(payload["line"]), col=int(payload["col"]),
                   args=tuple(CallArg.from_payload(arg)
                              for arg in payload["args"]))


@dataclass
class FunctionInfo:
    """Everything extracted from one function definition."""

    qualname: str                   # in-module ("Class.method")
    line: int
    params: Tuple[str, ...]         # declared order, incl. self/cls
    is_method: bool
    ops: Dict[str, int] = field(default_factory=dict)
    consts: Dict[str, int] = field(default_factory=dict)
    taints: Tuple[Taint, ...] = ()
    cache_scoped: bool = False

    def to_payload(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": list(self.params),
            "is_method": self.is_method,
            "ops": dict(self.ops),
            "consts": dict(self.consts),
            "taints": [taint.to_payload() for taint in self.taints],
            "cache_scoped": self.cache_scoped,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=payload["qualname"],
            line=int(payload["line"]),
            params=tuple(payload["params"]),
            is_method=bool(payload["is_method"]),
            ops={key: int(value)
                 for key, value in payload["ops"].items()},
            consts={key: int(value)
                    for key, value in payload["consts"].items()},
            taints=tuple(Taint.from_payload(entry)
                         for entry in payload["taints"]),
            cache_scoped=bool(payload["cache_scoped"]),
        )


@dataclass
class FileIndex:
    """The whole-program-relevant summary of one source file."""

    path: str
    module: str
    #: local alias → module-qualified target ("np" → "numpy",
    #: "krepeater" → "repro.kernels.repeater",
    #: "span" → "repro.runtime.trace.span").
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    #: line → rules suppressed there (the file's ``# repro: noqa``
    #: map, kept so project-level findings honour suppression without
    #: re-reading sources).
    noqa: Dict[int, List[str]] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": INDEX_SCHEMA,
            "path": self.path,
            "module": self.module,
            "imports": dict(self.imports),
            "functions": {name: info.to_payload()
                          for name, info in self.functions.items()},
            "calls": [site.to_payload() for site in self.calls],
            "noqa": {str(line): rules
                     for line, rules in self.noqa.items()},
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FileIndex":
        return cls(
            path=payload["path"],
            module=payload["module"],
            imports=dict(payload["imports"]),
            functions={
                name: FunctionInfo.from_payload(entry)
                for name, entry in payload["functions"].items()},
            calls=[CallSite.from_payload(entry)
                   for entry in payload["calls"]],
            noqa={int(line): list(rules)
                  for line, rules in payload["noqa"].items()},
        )


def _dotted(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as dotted text, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def _terminal(node: ast.AST) -> Optional[str]:
    """The terminal identifier of a name/attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _const_key(value: Any) -> Optional[str]:
    """Canonical multiset key for a numeric literal (bools excluded)."""
    if isinstance(value, bool) or not isinstance(value, (int, float,
                                                         complex)):
        return None
    return repr(value)


class _Indexer(ast.NodeVisitor):
    """One recursive walk building a :class:`FileIndex`."""

    def __init__(self, index: FileIndex):
        self.index = index
        #: stack of (qualname, FunctionInfo|None) — classes push
        #: (name, None) so methods qualify but ops do not attribute.
        self._stack: List[Tuple[str, Optional[FunctionInfo]]] = []
        self._mutable_globals: set = set()
        #: >0 while inside a comparison or subscript slice, where
        #: numeric literals are guards/indexing, not arithmetic
        #: constants.
        self._const_blind = 0

    # -- helpers ----------------------------------------------------------

    def _qualname(self, name: str) -> str:
        parts = [entry[0] for entry in self._stack] + [name]
        return ".".join(parts)

    def _current_function(self) -> Optional[FunctionInfo]:
        for _, info in reversed(self._stack):
            if info is not None:
                return info
        return None

    def _caller(self) -> str:
        info = self._current_function()
        return info.qualname if info is not None else ""

    def _resolved(self, node: ast.AST) -> Optional[str]:
        """Dotted text with the leading alias import-resolved."""
        dotted = _dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.index.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _taint(self, kind: str, detail: str, line: int) -> None:
        info = self._current_function()
        if info is not None:
            info.taints = info.taints + (Taint(kind, detail, line),)

    # -- module prescan ---------------------------------------------------

    def prescan_module(self, tree: ast.Module) -> None:
        """Module-level mutable bindings (for global-write taints)."""
        for stmt in tree.body:
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            mutable = isinstance(value, (ast.Dict, ast.List, ast.Set,
                                         ast.DictComp, ast.ListComp,
                                         ast.SetComp)) \
                or (isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in _MUTABLE_CONSTRUCTORS)
            if mutable:
                for target in targets:
                    if isinstance(target, ast.Name):
                        self._mutable_globals.add(target.id)

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else \
                alias.name.split(".")[0]
            self.index.imports[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return      # relative imports: not used in this repo
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.index.imports[local] = f"{node.module}.{alias.name}"

    # -- definitions ------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append((node.name, None))
        for child in node.body:
            self.visit(child)
        self._stack.pop()

    def _visit_function(self, node) -> None:
        is_method = bool(self._stack) and self._stack[-1][1] is None
        args = node.args
        params = tuple(arg.arg for arg in
                       list(args.posonlyargs) + list(args.args)
                       + list(args.kwonlyargs))
        info = FunctionInfo(
            qualname=self._qualname(node.name),
            line=node.lineno,
            params=params,
            is_method=is_method,
        )
        self.index.functions[info.qualname] = info
        self._stack.append((node.name, info))
        for child in node.body:
            self.visit(child)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- arithmetic facts -------------------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        info = self._current_function()
        op = type(node.op).__name__
        if info is not None and op in _ARITH_OPS:
            info.ops[op] = info.ops.get(op, 0) + 1
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        info = self._current_function()
        op = type(node.op).__name__
        if info is not None and op in _ARITH_OPS:
            info.ops[op] = info.ops.get(op, 0) + 1
        target = node.target
        if isinstance(target, ast.Name) \
                and target.id in self._mutable_globals:
            self._taint("global-write",
                        f"augmented assignment to module global "
                        f"'{target.id}'", node.lineno)
        self.generic_visit(node)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        info = self._current_function()
        if isinstance(node.op, ast.USub) \
                and isinstance(node.operand, ast.Constant):
            # Negated literals (``-1.0``) read as signed constants,
            # not as an arithmetic operation on a magnitude.
            key = _const_key(node.operand.value)
            if key is not None:
                if info is not None and not self._const_blind:
                    signed = f"-{key}"
                    info.consts[signed] = info.consts.get(signed,
                                                          0) + 1
                return
        if info is not None and isinstance(node.op, ast.USub):
            info.ops["USub"] = info.ops.get("USub", 0) + 1
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if self._const_blind:
            return
        info = self._current_function()
        key = _const_key(node.value)
        if info is not None and key is not None:
            info.consts[key] = info.consts.get(key, 0) + 1

    def visit_Compare(self, node: ast.Compare) -> None:
        # Guard literals (``if length <= 0``) are not arithmetic
        # constants; operations inside the comparison still count.
        self._const_blind += 1
        try:
            self.generic_visit(node)
        finally:
            self._const_blind -= 1

    # -- taints -----------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        names = ", ".join(node.names)
        self._taint("global-write",
                    f"rebinds module global(s) {names}", node.lineno)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "environ" \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "os":
            self._taint("env-read", "reads os.environ", node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolved(node.func)
        if resolved is not None:
            self._record_call_taints(node, resolved)
            ops = _OP_CALLS.get(resolved)
            info = self._current_function()
            if ops is not None and info is not None:
                for op in ops:
                    info.ops[op] = info.ops.get(op, 0) + 1
        self._record_call_site(node)
        self._record_cache_scope(node)
        self._record_global_mutation(node)
        self.generic_visit(node)

    def _record_call_taints(self, node: ast.Call,
                            resolved: str) -> None:
        if resolved in ("time.time", "time.time_ns"):
            self._taint("wall-clock", f"calls {resolved}()",
                        node.lineno)
        elif resolved in ("datetime.datetime.now",
                          "datetime.datetime.utcnow",
                          "datetime.datetime.today",
                          "datetime.date.today"):
            self._taint("wall-clock", f"calls {resolved}()",
                        node.lineno)
        elif resolved == "os.getenv":
            self._taint("env-read", "calls os.getenv()", node.lineno)
        elif resolved.startswith("random."):
            self._taint("global-rng", f"calls {resolved}()",
                        node.lineno)
        elif resolved.startswith("numpy.random."):
            attr = resolved.rsplit(".", 1)[1]
            if attr not in _SANCTIONED_NP_RANDOM:
                self._taint("global-rng",
                            f"calls numpy.random.{attr}()",
                            node.lineno)

    def _record_call_site(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        args: List[CallArg] = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                return  # *args defeat positional mapping — skip site
            args.append(CallArg(position=position, keyword=None,
                                name=_terminal(arg)))
        for keyword in node.keywords:
            if keyword.arg is None:
                return  # **kwargs likewise
            args.append(CallArg(position=None, keyword=keyword.arg,
                                name=_terminal(keyword.value)))
        self.index.calls.append(CallSite(
            caller=self._caller(), callee=dotted, line=node.lineno,
            col=node.col_offset + 1, args=tuple(args)))

    def _record_cache_scope(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in ("get", "put")):
            return
        receiver = _terminal(func.value)
        if receiver is None:
            return
        lowered = receiver.lower()
        if "cache" in lowered or "disk" in lowered:
            info = self._current_function()
            if info is not None:
                info.cache_scoped = True

    def _record_global_mutation(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in self._mutable_globals):
            return
        self._taint("global-write",
                    f"mutates module global '{func.value.id}' via "
                    f".{func.attr}()", node.lineno)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in self._mutable_globals:
            self._taint("global-write",
                        f"writes module global "
                        f"'{node.value.id}[...]'", node.lineno)
        self.visit(node.value)
        # Index literals (``coeffs[0]``, ``factors[:, :, 0::2]``) are
        # addressing, not arithmetic constants.
        self._const_blind += 1
        try:
            self.visit(node.slice)
        finally:
            self._const_blind -= 1


def index_source(source: str, path: str,
                 module: Optional[str] = None,
                 noqa: Optional[Dict[int, List[str]]] = None
                 ) -> FileIndex:
    """Build the :class:`FileIndex` of one in-memory source file.

    ``module`` defaults to :func:`module_name_for`; a file that does
    not parse yields an empty index (its syntax finding is the
    per-file layer's job).
    """
    index = FileIndex(path=path,
                      module=module or module_name_for(path),
                      noqa=dict(noqa or {}))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return index
    indexer = _Indexer(index)
    indexer.prescan_module(tree)
    for stmt in tree.body:
        indexer.visit(stmt)
    return index
