"""Base class of the whole-program (interprocedural) lint rules.

File-level rules subclass :class:`repro.analysis.core.Checker` and see
one AST at a time.  Project-level rules subclass
:class:`ProjectChecker` instead: after every file has been indexed
(:mod:`repro.analysis.index`) and the call graph resolved
(:mod:`repro.analysis.graph`), each project checker's :meth:`check`
runs once over the aggregate.  Findings honour the same ``# repro:
noqa`` suppression as file rules — the per-file noqa maps travel with
the indexes — and the same baseline grandfathering downstream.

Rules carry a ``version``; the incremental lint cache folds the
versions of every enabled rule into its keys, so bumping a version
invalidates exactly the cached results the new semantics could change.
"""

from __future__ import annotations

from typing import List, Optional

from .core import Finding
from .graph import CallGraph, ProjectIndex


class ProjectChecker:
    """One interprocedural rule.

    Subclasses set :attr:`rule`, :attr:`severity`, :attr:`description`
    and implement :meth:`check`; :meth:`report` accumulates findings
    with noqa suppression applied at the reported line.
    """

    rule: str = ""
    severity: str = "error"
    description: str = ""
    #: bump when the rule's semantics change (cache invalidation).
    version: int = 1

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self._project: Optional[ProjectIndex] = None  # set by run()

    def report(self, path: str, line: int, col: int,
               message: str) -> None:
        index = self._project.files.get(path) if self._project else None
        if index is not None:
            rules = index.noqa.get(line)
            if rules is not None and ("*" in rules
                                      or self.rule in rules):
                return
        self.findings.append(Finding(
            path=path, line=line, col=col, rule=self.rule,
            message=message, severity=self.severity))

    def run(self, project: ProjectIndex,
            graph: CallGraph) -> List[Finding]:
        self.findings = []
        self._project = project
        self.check(project, graph)
        return sorted(self.findings, key=Finding.sort_key)

    def check(self, project: ProjectIndex,
              graph: CallGraph) -> None:
        raise NotImplementedError
