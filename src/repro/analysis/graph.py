"""Project-wide symbol table and call graph.

:class:`ProjectIndex` aggregates the per-file :class:`FileIndex`
summaries of one lint run into a module-qualified symbol table;
:class:`CallGraph` resolves each recorded call site against that table
(imports, ``from``-aliases, ``self.`` methods, own-module names) into
def/use edges. Interprocedural checkers walk the graph; ``repro lint
--graph OUT`` serializes it as JSON (``.json``) or Graphviz DOT
(anything else).

Resolution is deliberately conservative: a call that cannot be mapped
to an indexed definition (builtins, third-party APIs, dynamic
dispatch on instance variables) simply produces no edge. The
interprocedural rules are therefore under- rather than
over-approximate — they never invent an edge that is not visibly
spelled in the source.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .index import CallSite, FileIndex, FunctionInfo

#: Bump when resolution semantics change; part of the lint cache key.
GRAPH_SCHEMA = 1


class ProjectIndex:
    """All file indexes of a run, queryable by module-qualified name."""

    def __init__(self, files: Iterable[FileIndex]):
        self.files: Dict[str, FileIndex] = {}
        self.modules: Dict[str, FileIndex] = {}
        #: "module.qualname" → (FileIndex, FunctionInfo)
        self.symbols: Dict[str, Tuple[FileIndex, FunctionInfo]] = {}
        for index in files:
            self.add(index)

    def add(self, index: FileIndex) -> None:
        self.files[index.path] = index
        self.modules[index.module] = index
        for qualname, info in index.functions.items():
            self.symbols[f"{index.module}.{qualname}"] = (index, info)

    def function(self, name: str) -> Optional[FunctionInfo]:
        entry = self.symbols.get(name)
        return entry[1] if entry is not None else None

    def file_of(self, name: str) -> Optional[FileIndex]:
        entry = self.symbols.get(name)
        return entry[0] if entry is not None else None

    def is_suppressed(self, name: str, line: int, rule: str) -> bool:
        """Honour ``# repro: noqa`` for a project-level finding."""
        index = self.file_of(name)
        if index is None:
            return False
        rules = index.noqa.get(line)
        if rules is None:
            return False
        return "*" in rules or rule in rules

    def resolve(self, index: FileIndex,
                callee: str) -> Optional[str]:
        """Map a call-site's dotted ``callee`` text to a symbol name.

        Handles, in order: ``self.method`` within the enclosing class,
        bare names defined in or imported into the calling module,
        and attribute chains rooted at an imported module alias.
        Returns ``None`` when the target is not an indexed definition.
        """
        head, _, rest = callee.partition(".")
        if head in ("self", "cls") and rest:
            return self._resolve_self(index, callee, rest)
        target = index.imports.get(head)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
        else:
            dotted = f"{index.module}.{callee}"
        if dotted in self.symbols:
            return dotted
        # ``from pkg import mod`` followed by ``mod.fn(...)`` resolves
        # the alias to the module, and the attr to its function.
        if target is not None and target in self.modules and rest:
            qualified = f"{self.modules[target].module}.{rest}"
            if qualified in self.symbols:
                return qualified
        return None

    def _resolve_self(self, index: FileIndex, callee: str,
                      rest: str) -> Optional[str]:
        # ``self.method`` resolves within any class of the module that
        # defines a matching method name; unique match required.
        matches = [
            f"{index.module}.{qualname}"
            for qualname, info in index.functions.items()
            if info.is_method and qualname.endswith(f".{rest}")
        ]
        return matches[0] if len(matches) == 1 else None


class CallGraph:
    """Resolved def/use edges over a :class:`ProjectIndex`."""

    def __init__(self, project: ProjectIndex):
        self.project = project
        #: caller symbol → [(callee symbol, CallSite)]
        self.edges: Dict[str, List[Tuple[str, CallSite]]] = {}
        #: (caller path, call line) ties each edge to its source site.
        for index in project.files.values():
            for site in index.calls:
                resolved = project.resolve(index, site.callee)
                if resolved is None:
                    continue
                caller = (f"{index.module}.{site.caller}"
                          if site.caller else index.module)
                self.edges.setdefault(caller, []).append(
                    (resolved, site))

    def callees_of(self, name: str) -> List[Tuple[str, CallSite]]:
        return self.edges.get(name, [])

    def closure(self, roots: Iterable[str],
                stop: Optional[Set[str]] = None
                ) -> Dict[str, List[str]]:
        """Breadth-first reachability from ``roots``.

        Returns reached symbol → shortest call chain (list of symbol
        names from a root to it, inclusive). Traversal does not expand
        nodes whose module is in ``stop`` (their own facts are still
        reported — the chain just ends there).
        """
        reached: Dict[str, List[str]] = {}
        queue: deque = deque()
        for root in roots:
            if root not in reached:
                reached[root] = [root]
                queue.append(root)
        while queue:
            current = queue.popleft()
            index = self.project.file_of(current)
            if stop and index is not None and index.module in stop:
                continue
            for callee, _site in self.callees_of(current):
                if callee in reached:
                    continue
                reached[callee] = reached[current] + [callee]
                queue.append(callee)
        return reached

    # -- serialization ----------------------------------------------------

    def to_json(self) -> Dict:
        nodes = []
        for name, (index, info) in sorted(
                self.project.symbols.items()):
            nodes.append({"name": name, "path": index.path,
                          "line": info.line})
        edges = []
        for caller in sorted(self.edges):
            for callee, site in self.edges[caller]:
                edges.append({"caller": caller, "callee": callee,
                              "line": site.line})
        return {
            "schema": GRAPH_SCHEMA,
            "modules": sorted(self.project.modules),
            "nodes": nodes,
            "edges": edges,
        }

    def to_dot(self) -> str:
        lines = ["digraph repro_calls {", "  rankdir=LR;",
                 "  node [shape=box, fontsize=10];"]
        names = sorted(self.project.symbols)
        for name in names:
            lines.append(f'  "{name}";')
        seen: Set[Tuple[str, str]] = set()
        for caller in sorted(self.edges):
            for callee, _site in self.edges[caller]:
                if (caller, callee) in seen:
                    continue
                seen.add((caller, callee))
                lines.append(f'  "{caller}" -> "{callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


def build_graph(files: Iterable[FileIndex]) -> CallGraph:
    """Convenience: aggregate ``files`` and resolve their edges."""
    return CallGraph(ProjectIndex(files))
