"""Project-specific AST static analysis (the ``repro lint`` engine).

Generic linters cannot see this repository's correctness conventions —
the SI-units discipline of :mod:`repro.units`, the any-worker-count
determinism contract of :mod:`repro.runtime.parallel`, the purity
requirements of :class:`repro.runtime.DiskCache` keys, pool-safe
callables, and span lifecycle.  This package can: five small checkers
share one AST walk per file (:mod:`repro.analysis.core`), suppression
is inline (``# repro: noqa[rule]``), and a committed baseline file
grandfathers pre-existing findings so the CI gate only trips on new
ones (:mod:`repro.analysis.baseline`).

Entry points: :func:`run_lint` does everything the ``repro lint``
subcommand needs; :func:`lint_paths` is the lower-level scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import (
    BASELINE_SCHEMA,
    apply_baseline,
    prune_baseline,
    read_baseline,
    write_baseline,
)
from repro.analysis.checkers import (
    ALL_CHECKERS,
    CHECKERS_BY_RULE,
    PROJECT_CHECKERS,
    PROJECT_CHECKERS_BY_RULE,
)
from repro.analysis.core import (
    Checker,
    FileContext,
    Finding,
    SYNTAX_RULE,
    check_file,
    check_source,
    collect_files,
    display_path,
)
from repro.analysis.engine import Scan, scan_paths, split_rules
from repro.analysis.project import ProjectChecker
from repro.runtime.metrics import METRICS

__all__ = [
    "ALL_CHECKERS",
    "BASELINE_SCHEMA",
    "CHECKERS_BY_RULE",
    "Checker",
    "FileContext",
    "Finding",
    "LintResult",
    "PROJECT_CHECKERS",
    "PROJECT_CHECKERS_BY_RULE",
    "ProjectChecker",
    "SYNTAX_RULE",
    "Scan",
    "apply_baseline",
    "check_file",
    "check_source",
    "collect_files",
    "display_path",
    "lint_paths",
    "prune_baseline",
    "read_baseline",
    "run_lint",
    "scan_paths",
    "split_rules",
    "write_baseline",
]


@dataclass
class LintResult:
    """Everything one ``repro lint`` run produced."""

    findings: List[Finding]
    files_scanned: int
    baselined: int = 0
    #: every finding before baseline filtering (what --write-baseline
    #: serializes).
    all_findings: List[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def format_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        total = len(self.findings)
        summary = (f"{self.files_scanned} files scanned, "
                   f"{total} finding{'s' if total != 1 else ''}")
        if self.baselined:
            summary += f" ({self.baselined} baselined)"
        if self.findings:
            per_rule = ", ".join(
                f"{rule}: {count}"
                for rule, count in sorted(self.by_rule().items()))
            summary += f" — {per_rule}"
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {
            "files_scanned": self.files_scanned,
            "baselined": self.baselined,
            "findings": [finding.to_json()
                         for finding in self.findings],
            "counts_by_rule": self.by_rule(),
        }


def make_checkers(rules: Optional[Sequence[str]] = None
                  ) -> List[Checker]:
    """Fresh *file-level* checker instances, optionally restricted to
    ``rules`` (which may also name project rules — they validate but
    produce no file checker here).

    Unknown rule names and an empty selection raise
    :class:`ValueError` (usage errors).
    """
    file_rules, _ = split_rules(rules)
    return [CHECKERS_BY_RULE[rule]() for rule in file_rules]


def lint_paths(paths: Sequence[Path],
               rules: Optional[Sequence[str]] = None,
               exclude: Sequence[str] = ()
               ) -> Tuple[List[Finding], int]:
    """Scan ``paths``; returns (findings, files scanned).

    Thin compatibility wrapper over :func:`scan_paths` — the cached,
    parallel engine with the whole-program rules included.
    Instrumented through :data:`repro.runtime.metrics.METRICS`
    (``lint.files``, ``lint.cache.hit``/``miss``, the
    ``lint.walk_seconds`` histogram, ``lint.findings.<rule>``, the
    ``lint.scan`` timer) so ``repro lint --stats`` prints warm/cold
    behaviour in the same footer as every other subcommand.
    """
    scan = scan_paths(paths, rules=rules, exclude=exclude)
    return scan.findings, scan.files_scanned


def run_lint(paths: Sequence[Path],
             rules: Optional[Sequence[str]] = None,
             exclude: Sequence[str] = (),
             baseline_path: Optional[Path] = None,
             graph_path: Optional[Path] = None) -> LintResult:
    """Scan, serialize the call graph if asked, then apply the
    baseline if one was given.

    ``graph_path`` writes the resolved project call graph: JSON for a
    ``.json`` suffix, Graphviz DOT otherwise.
    """
    scan = scan_paths(paths, rules=rules, exclude=exclude)
    all_findings, files_scanned = scan.findings, scan.files_scanned
    if graph_path is not None:
        graph = scan.graph()
        graph_path = Path(graph_path)
        if graph_path.suffix == ".json":
            import json
            graph_path.write_text(
                json.dumps(graph.to_json(), indent=2, sort_keys=True)
                + "\n", encoding="utf-8")
        else:
            graph_path.write_text(graph.to_dot(), encoding="utf-8")
    findings = all_findings
    baselined = 0
    if baseline_path is not None and Path(baseline_path).exists():
        budget = read_baseline(baseline_path)
        findings, baselined = apply_baseline(all_findings, budget)
        if baselined:
            METRICS.count("lint.baselined", baselined)
    return LintResult(findings=findings, files_scanned=files_scanned,
                      baselined=baselined, all_findings=all_findings)
