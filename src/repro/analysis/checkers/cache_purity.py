"""``cache-purity``: cached payloads must be functions of their key.

A :class:`repro.runtime.DiskCache` entry outlives the process that
wrote it.  If the function that computes a payload also reads state
that is *not* hashed into the key — ``os.environ``, a module-level
mutable — then two runs with different environments share one cache
slot and the second silently gets the first's answer.  This checker
marks a function "cache-scoped" when it calls ``.get``/``.put`` on
something that provably resolves to a ``DiskCache`` (a module-level or
local ``DiskCache(...)`` binding, or a ``self.<attr>`` that is
assigned ``DiskCache(...)`` anywhere in the file) and then flags,
inside that function:

* ``os.environ`` / ``os.getenv`` reads, and
* reads of module-level **mutable** globals (dict/list/set literals
  or constructor calls) — constants are fine, they cannot drift.

The analysis is function-local by design: it will not follow a helper
called from a cache-scoped function.  Keep key construction and
payload computation together, or ``# repro: noqa[cache-purity]`` with
a comment saying why the read is key-irrelevant.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.core import Checker, FileContext

_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque",
})


def _is_diskcache_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "DiskCache"
    if isinstance(func, ast.Attribute):
        return func.attr == "DiskCache"
    return False


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


class _Frame:
    """Pending evidence for one function being analyzed."""

    __slots__ = ("cache_scoped", "local_caches", "pending")

    def __init__(self) -> None:
        self.cache_scoped = False
        self.local_caches: Set[str] = set()
        self.pending: List[tuple] = []  # (node, message)


class CachePurityChecker(Checker):
    """Environment and mutable-global reads in DiskCache functions."""

    rule = "cache-purity"
    severity = "error"
    description = ("DiskCache-keyed functions must not read "
                   "os.environ or mutable module globals that are "
                   "not part of the key")

    def begin_file(self, context: FileContext) -> None:
        super().begin_file(context)
        self._frames: List[_Frame] = []
        self._module_caches: Set[str] = set()
        self._attr_caches: Set[str] = set()
        self._mutable_globals: Set[str] = set()
        self._prescan(context.tree)

    def _prescan(self, tree: ast.Module) -> None:
        """Module-level bindings the per-function walk relies on."""
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if _is_diskcache_call(stmt.value):
                        self._module_caches.add(target.id)
                    elif _is_mutable_literal(stmt.value):
                        self._mutable_globals.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.value is not None:
                if _is_diskcache_call(stmt.value):
                    self._module_caches.add(stmt.target.id)
                elif _is_mutable_literal(stmt.value):
                    self._mutable_globals.add(stmt.target.id)
        # self.<attr> = DiskCache(...) anywhere in the file.
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) \
                    and _is_diskcache_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        self._attr_caches.add(target.attr)

    # -- function frames ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._frames.append(_Frame())

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._frames.append(_Frame())

    def _pop_frame(self) -> None:
        frame = self._frames.pop()
        if frame.cache_scoped:
            for pending_node, message in frame.pending:
                self.report(pending_node, message)
            # A nested def inherits its parent's cache scope evidence
            # upward: the enclosing function effectively touches the
            # cache too only if it has its own calls, so no bubbling.

    def leave_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._pop_frame()

    def leave_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._pop_frame()

    # -- evidence ------------------------------------------------------------------

    def _is_cache_receiver(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            if node.id in self._module_caches:
                return True
            return any(node.id in frame.local_caches
                       for frame in self._frames)
        if isinstance(node, ast.Attribute):
            return node.attr in self._attr_caches
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._frames and _is_diskcache_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._frames[-1].local_caches.add(target.id)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._frames:
            return
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr in ("get", "put") \
                and self._is_cache_receiver(func.value):
            self._frames[-1].cache_scoped = True
        # os.getenv(...)
        if isinstance(func, ast.Attribute) \
                and func.attr == "getenv" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "os":
            self._frames[-1].pending.append(
                (node, "os.getenv() read inside a DiskCache-keyed "
                       "function; the environment is not part of the "
                       "cache key — hash it in, or hoist the read"))

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if not self._frames:
            return
        if node.attr == "environ" \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "os":
            self._frames[-1].pending.append(
                (node, "os.environ read inside a DiskCache-keyed "
                       "function; the environment is not part of the "
                       "cache key — hash it in, or hoist the read"))

    def visit_Name(self, node: ast.Name) -> None:
        if not self._frames or not isinstance(node.ctx, ast.Load):
            return
        if node.id in self._mutable_globals:
            self._frames[-1].pending.append(
                (node, f"mutable module global '{node.id}' read "
                       f"inside a DiskCache-keyed function but not "
                       f"hashed into the key; pass it in as an "
                       f"argument or fold it into the key"))
