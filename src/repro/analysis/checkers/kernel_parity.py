"""`kernel-parity` — batched kernels must mirror their scalar models.

The vectorized kernels in :mod:`repro.kernels` hold a ≤1e-9
equivalence contract with the scalar model path, and that contract
survives refactors only while both sides compute with the *same
arithmetic*.  This rule compares, for every pair declared in
:data:`repro.kernels.parity.PARITY_PAIRS`, the merged
arithmetic-operation multiset (``+``, ``*``, ``**``, canonicalized
calls like ``np.power``/``max``/``sum``) and numeric-constant multiset
of the kernel side against the scalar side, as extracted by the
whole-program index.  Any difference — an extra multiply, a changed
coefficient — is a finding at the kernel's definition site.

It also enforces registry *coverage*: a public module-level function
added to ``repro.kernels`` that is neither paired nor listed in
:data:`repro.kernels.parity.EXEMPT` is flagged, so new kernels cannot
ship without a declared scalar counterpart.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Sequence, Tuple

from repro.analysis.graph import CallGraph, ProjectIndex
from repro.analysis.project import ProjectChecker
from repro.kernels.parity import EXEMPT, PARITY_PAIRS, ParityPair

#: Module prefix whose public functions the coverage check sweeps.
_KERNEL_PREFIX = "repro.kernels."

#: Kernel modules exempt from coverage (the registry itself).
_NON_KERNEL_MODULES = ("repro.kernels.parity", "repro.kernels")


def _format_multiset(counts: Dict[str, int]) -> str:
    if not counts:
        return "(none)"
    return ", ".join(f"{name}×{counts[name]}"
                     for name in sorted(counts))


def _diff(kernel: Dict[str, int], scalar: Dict[str, int]) -> str:
    """Human-readable asymmetric difference of two multisets."""
    extra = Counter(kernel) - Counter(scalar)
    missing = Counter(scalar) - Counter(kernel)
    parts = []
    if extra:
        parts.append(f"kernel has extra {_format_multiset(dict(extra))}")
    if missing:
        parts.append(f"kernel lacks {_format_multiset(dict(missing))}")
    return "; ".join(parts)


class KernelParityChecker(ProjectChecker):
    rule = "kernel-parity"
    severity = "error"
    description = ("registered scalar↔batch pairs must share one "
                   "arithmetic-operation and constant multiset")
    version = 1

    #: Overridable in tests to point at a fixture registry.
    pairs: Tuple[ParityPair, ...] = PARITY_PAIRS
    exempt = EXEMPT

    def __init__(self, pairs: "Tuple[ParityPair, ...] | None" = None,
                 exempt=None) -> None:
        super().__init__()
        if pairs is not None:
            self.pairs = pairs
        if exempt is not None:
            self.exempt = exempt

    # -- helpers ----------------------------------------------------------

    def _merged(self, project: ProjectIndex, names: Sequence[str]
                ) -> "Tuple[Dict[str, int], Dict[str, int]] | None":
        """Merged (ops, consts) of one side; None if any name is not
        indexed (the caller decides how to report that)."""
        ops: Counter = Counter()
        consts: Counter = Counter()
        for name in names:
            info = project.function(name)
            if info is None:
                return None
            ops.update(info.ops)
            consts.update(info.consts)
        return dict(ops), dict(consts)

    def _anchor(self, project: ProjectIndex,
                names: Sequence[str]) -> "Tuple[str, int] | None":
        """(path, line) of the first indexed function among names."""
        for name in names:
            index = project.file_of(name)
            info = project.function(name)
            if index is not None and info is not None:
                return index.path, info.line
        return None

    # -- the rule ---------------------------------------------------------

    def check(self, project: ProjectIndex,
              graph: CallGraph) -> None:
        kernels_indexed = any(
            module.startswith(_KERNEL_PREFIX)
            for module in project.modules)
        if not kernels_indexed:
            return      # linting a subtree with no kernel code
        for pair in self.pairs:
            self._check_pair(project, pair)
        self._check_coverage(project)

    def _check_pair(self, project: ProjectIndex,
                    pair: ParityPair) -> None:
        anchor = self._anchor(project, pair.kernel) \
            or self._anchor(project, pair.scalar)
        kernel_side = self._merged(project, pair.kernel)
        scalar_side = self._merged(project, pair.scalar)
        if kernel_side is None or scalar_side is None:
            if anchor is None:
                return      # neither side in scope — nothing to say
            missing = [name for name in (*pair.kernel, *pair.scalar)
                       if project.function(name) is None]
            path, line = anchor
            self.report(path, line, 1,
                        f"parity pair '{pair.name}' references "
                        f"unindexed function(s): "
                        f"{', '.join(sorted(missing))} — fix the "
                        f"registry in repro/kernels/parity.py")
            return
        kernel_ops, kernel_consts = kernel_side
        scalar_ops, scalar_consts = scalar_side
        path, line = anchor
        if kernel_ops != scalar_ops:
            self.report(
                path, line, 1,
                f"parity pair '{pair.name}': operation multiset "
                f"drift vs scalar counterpart — "
                f"{_diff(kernel_ops, scalar_ops)}")
        if pair.compare == "exact" and kernel_consts != scalar_consts:
            self.report(
                path, line, 1,
                f"parity pair '{pair.name}': numeric-constant drift "
                f"vs scalar counterpart — "
                f"{_diff(kernel_consts, scalar_consts)}")

    def _check_coverage(self, project: ProjectIndex) -> None:
        paired = {name for pair in self.pairs for name in pair.kernel}
        for module in sorted(project.modules):
            if not module.startswith(_KERNEL_PREFIX) \
                    or module in _NON_KERNEL_MODULES:
                continue
            index = project.modules[module]
            for qualname, info in index.functions.items():
                if info.is_method or "." in qualname \
                        or qualname.startswith("_"):
                    continue
                name = f"{module}.{qualname}"
                if name in paired or name in self.exempt:
                    continue
                self.report(
                    index.path, info.line, 1,
                    f"public kernel '{name}' has no entry in the "
                    f"parity registry — pair it with its scalar "
                    f"counterpart in repro/kernels/parity.py or add "
                    f"it to EXEMPT with a rationale")
