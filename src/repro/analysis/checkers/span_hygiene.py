"""``span-hygiene``: spans only exist inside a ``with``.

:func:`repro.runtime.trace.span` returns a context manager; the span
begins at ``__enter__`` and its end event is emitted at ``__exit__``.
A bare call —

    span("phase")          # nothing happens, silently

— never enters the span, so the trace is missing the region *and* the
tracer's active-span stack never sees it; an assigned-but-unentered
span (``sp = span(...)``) is the same bug one step later.  The
sanctioned positions are as a ``with`` item (possibly inside one
combined ``with a, b:``), handed to ``ExitStack.enter_context``, or
directly ``return``-ed (a delegating factory — the caller enters it,
as :func:`repro.runtime.trace.span` itself does).

The rule also guards the histogram-metric namespace: the first
argument of ``METRICS.observe(...)`` / ``METRICS.observed(...)`` must
be a string literal or an ``UPPER_CASE`` constant.  A dynamically
built metric name (``METRICS.observe(f"cache.{kind}", ...)``) makes
the exported series set unbounded and non-enumerable; the sanctioned
door for per-key series is ``METRICS.observe_keyed(base, key, value)``
which keeps the base name static and greppable.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.core import Checker, FileContext

#: Module-ish receivers whose ``.span`` attribute is the tracer API.
_SPAN_RECEIVERS = frozenset({"trace", "rt", "runtime", "tracer"})

#: Registry receivers whose ``observe``/``observed`` methods take a
#: metric name as their first argument.
_METRIC_RECEIVERS = frozenset({"metrics", "registry", "stats"})

#: The registry methods whose first argument names a metric series.
_OBSERVE_ATTRS = frozenset({"observe", "observed"})


class SpanHygieneChecker(Checker):
    """Flags ``span(...)`` calls not used as context managers."""

    rule = "span-hygiene"
    severity = "error"
    description = ("trace.span(...) must be entered as a context "
                   "manager (with-statement or enter_context)")

    def begin_file(self, context: FileContext) -> None:
        super().begin_file(context)
        #: ids of span-call nodes that appear in a sanctioned slot.
        self._sanctioned: Set[int] = set()
        #: whether `span` was imported from the repro runtime, so a
        #: bare-name `span(...)` in this file is the tracer's.
        self._span_imported = False

    def _is_span_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "span" and self._span_imported
        if isinstance(func, ast.Attribute) and func.attr == "span":
            value = func.value
            if isinstance(value, ast.Name):
                return value.id.lower() in _SPAN_RECEIVERS \
                    or value.id == "TRACER"
            if isinstance(value, ast.Attribute):
                return value.attr in ("trace", "runtime") \
                    or value.attr == "TRACER"
        return False

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and (node.module == "repro.runtime"
                            or node.module.startswith("repro.runtime.")):
            for alias in node.names:
                if alias.name == "span" and alias.asname is None:
                    self._span_imported = True

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                self._sanctioned.add(id(item.context_expr))

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                self._sanctioned.add(id(item.context_expr))

    def visit_Return(self, node: ast.Return) -> None:
        # `return span(...)` delegates entry to the caller.
        if isinstance(node.value, ast.Call):
            self._sanctioned.add(id(node.value))

    def _is_observe_call(self, node: ast.Call) -> bool:
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in _OBSERVE_ATTRS:
            return False
        value = func.value
        if isinstance(value, ast.Name):
            return value.id in ("METRICS", "STATS") \
                or value.id.lower() in _METRIC_RECEIVERS
        if isinstance(value, ast.Attribute):
            return value.attr in ("METRICS", "STATS")
        return False

    @staticmethod
    def _metric_name_ok(arg: ast.expr) -> bool:
        """Whether a metric-name argument is statically enumerable."""
        if isinstance(arg, ast.Constant):
            return isinstance(arg.value, str)
        if isinstance(arg, ast.Name):
            return arg.id == arg.id.upper()
        if isinstance(arg, ast.Attribute):
            return arg.attr == arg.attr.upper()
        return False

    def visit_Call(self, node: ast.Call) -> None:
        # ExitStack.enter_context(span(...)) is sanctioned too.
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr == "enter_context":
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    self._sanctioned.add(id(arg))
        if self._is_observe_call(node) and node.args \
                and not self._metric_name_ok(node.args[0]):
            self.report(node, "metric name passed to observe()/"
                              "observed() must be a string literal "
                              "or UPPER_CASE constant so the "
                              "exported series stay enumerable; "
                              "dynamic names go through "
                              "observe_keyed(base, key, value)")
        if not self._is_span_call(node):
            return
        if id(node) in self._sanctioned:
            return
        self.report(node, "span(...) called without entering it; a "
                          "span only begins inside 'with span(...)' "
                          "(or ExitStack.enter_context)")
