"""``span-hygiene``: spans only exist inside a ``with``.

:func:`repro.runtime.trace.span` returns a context manager; the span
begins at ``__enter__`` and its end event is emitted at ``__exit__``.
A bare call —

    span("phase")          # nothing happens, silently

— never enters the span, so the trace is missing the region *and* the
tracer's active-span stack never sees it; an assigned-but-unentered
span (``sp = span(...)``) is the same bug one step later.  The
sanctioned positions are as a ``with`` item (possibly inside one
combined ``with a, b:``), handed to ``ExitStack.enter_context``, or
directly ``return``-ed (a delegating factory — the caller enters it,
as :func:`repro.runtime.trace.span` itself does).
"""

from __future__ import annotations

import ast
from typing import Set

from repro.analysis.core import Checker, FileContext

#: Module-ish receivers whose ``.span`` attribute is the tracer API.
_SPAN_RECEIVERS = frozenset({"trace", "rt", "runtime", "tracer"})


class SpanHygieneChecker(Checker):
    """Flags ``span(...)`` calls not used as context managers."""

    rule = "span-hygiene"
    severity = "error"
    description = ("trace.span(...) must be entered as a context "
                   "manager (with-statement or enter_context)")

    def begin_file(self, context: FileContext) -> None:
        super().begin_file(context)
        #: ids of span-call nodes that appear in a sanctioned slot.
        self._sanctioned: Set[int] = set()
        #: whether `span` was imported from the repro runtime, so a
        #: bare-name `span(...)` in this file is the tracer's.
        self._span_imported = False

    def _is_span_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "span" and self._span_imported
        if isinstance(func, ast.Attribute) and func.attr == "span":
            value = func.value
            if isinstance(value, ast.Name):
                return value.id.lower() in _SPAN_RECEIVERS \
                    or value.id == "TRACER"
            if isinstance(value, ast.Attribute):
                return value.attr in ("trace", "runtime") \
                    or value.attr == "TRACER"
        return False

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and (node.module == "repro.runtime"
                            or node.module.startswith("repro.runtime.")):
            for alias in node.names:
                if alias.name == "span" and alias.asname is None:
                    self._span_imported = True

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                self._sanctioned.add(id(item.context_expr))

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                self._sanctioned.add(id(item.context_expr))

    def visit_Return(self, node: ast.Return) -> None:
        # `return span(...)` delegates entry to the caller.
        if isinstance(node.value, ast.Call):
            self._sanctioned.add(id(node.value))

    def visit_Call(self, node: ast.Call) -> None:
        # ExitStack.enter_context(span(...)) is sanctioned too.
        func = node.func
        if isinstance(func, ast.Attribute) \
                and func.attr == "enter_context":
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    self._sanctioned.add(id(arg))
        if not self._is_span_call(node):
            return
        if id(node) in self._sanctioned:
            return
        self.report(node, "span(...) called without entering it; a "
                          "span only begins inside 'with span(...)' "
                          "(or ExitStack.enter_context)")
