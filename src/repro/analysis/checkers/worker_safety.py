"""``worker-safety``: only module-level callables cross the pool.

:func:`repro.runtime.parallel.parallel_map` pickles its callable into
worker processes.  Lambdas and functions defined inside another
function do not pickle — and worse, under a ``fork`` start method they
*may* appear to work while capturing parent state that a ``spawn``
pool would not see, so the same code diverges between platforms.  The
rule: the ``fn`` argument must be a module-level function (a plain
name or a dotted module attribute), never a lambda or a closure-local
``def``.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.core import Checker, FileContext


class _Scope:
    """One enclosing function scope and the callables local to it."""

    __slots__ = ("local_callables",)

    def __init__(self) -> None:
        self.local_callables: Set[str] = set()


class WorkerSafetyChecker(Checker):
    """Flags lambdas and closure-local defs dispatched to the pool."""

    rule = "worker-safety"
    severity = "error"
    description = ("callables passed to parallel_map must be "
                   "module-level functions (picklable, closure-free)")

    def begin_file(self, context: FileContext) -> None:
        super().begin_file(context)
        self._scopes: List[_Scope] = []

    # -- scope tracking --------------------------------------------------------

    def _enter_function(self, node) -> None:
        if self._scopes:
            # A def nested inside another function is closure-local.
            self._scopes[-1].local_callables.add(node.name)
        self._scopes.append(_Scope())

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def leave_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scopes.pop()

    def leave_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._scopes.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        # name = lambda ...: a function-local alias of a closure.
        if self._scopes and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._scopes[-1].local_callables.add(target.id)

    # -- the dispatch site -------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "parallel_map":
            return
        fn = node.args[0] if node.args else None
        for keyword in node.keywords:
            if keyword.arg == "fn":
                fn = keyword.value
        if fn is None:
            return
        if isinstance(fn, ast.Lambda):
            self.report(fn, "lambda passed to parallel_map cannot be "
                            "pickled into pool workers; hoist it to a "
                            "module-level function")
            return
        if isinstance(fn, ast.Name):
            if any(fn.id in scope.local_callables
                   for scope in self._scopes):
                self.report(fn, f"'{fn.id}' is defined inside an "
                                f"enclosing function; parallel_map "
                                f"workers cannot unpickle closure-"
                                f"local callables — move it to "
                                f"module level")
