"""``determinism``: no wall clocks, no global RNG, no set ordering.

The runtime's contract is bit-equal results for any ``--workers N``
(see :mod:`repro.runtime.parallel`).  Three things silently break it:

* **Module-level RNG state** — ``random.*`` and ``np.random.<fn>``
  draw from process-global generators whose state depends on call
  order, which differs between serial and pooled execution.  Only
  ``SeedSequence``-derived generators (``np.random.default_rng(seed)``,
  ``spawn_seed_sequences``) are stream-stable.

* **Wall clocks in results** — ``time.time()`` / ``datetime.now()``
  make output depend on when it ran.  They are legitimate only in the
  observability layer (``runtime/trace.py``, ``runtime/manifest.py``),
  whose entire job is timestamping, and in the fault-injection harness
  (``runtime/faults.py``) — the one sanctioned nondeterminism hook,
  whose injected delays and crashes are site-addressed and therefore
  reproducible even though they model timing faults.

* **Unordered iteration into ordered machinery** — a ``set`` fed to
  ``parallel_map`` or into a cache key iterates in hash order, which
  varies across processes (``PYTHONHASHSEED``) and so changes both
  task-to-stream pairing and cache fingerprints.  ``sorted(...)`` the
  set first.

Inside :mod:`repro.kernels` the RNG rule tightens to a blanket ban:
kernels are pure array transforms, so *no* ``numpy.random`` usage is
allowed there — not even the seeded API.  All draws happen in the
caller (which owns the ``SeedSequence`` streams) and arrive as arrays;
``Generator`` instances may only be threaded in as arguments.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Tuple

from repro.analysis.core import Checker, FileContext

#: Files (path suffixes) allowed to read wall clocks: the
#: observability layer (timestamping is its job) and the
#: fault-injection harness (deterministic, site-addressed injection
#: points are the only sanctioned nondeterminism hooks).
CLOCK_ALLOWED_SUFFIXES: Tuple[str, ...] = (
    "runtime/trace.py",
    "runtime/manifest.py",
    "runtime/faults.py",
)

#: np.random attributes that are part of the sanctioned seeded API.
_SANCTIONED_NP_RANDOM = frozenset({
    "SeedSequence", "default_rng", "Generator", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})

#: Receivers whose ``.get``/``.put`` arguments become cache keys.
_CACHE_METHODS = frozenset({"get", "put"})


def _is_set_expr(node: ast.AST) -> bool:
    """Is this expression certainly an unordered set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    # list(...)/tuple(...) of a set is still hash-ordered.
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("list", "tuple") and node.args \
            and _is_set_expr(node.args[0]):
        return True
    return False


class DeterminismChecker(Checker):
    """Global RNG, wall clocks, and set-ordered dispatch."""

    rule = "determinism"
    severity = "error"
    description = ("forbids module-level RNG, wall clocks outside the "
                   "observability layer, and unordered sets feeding "
                   "parallel_map or cache keys")

    def begin_file(self, context: FileContext) -> None:
        super().begin_file(context)
        path = context.path.replace("\\", "/")
        self._clocks_allowed = path.endswith(CLOCK_ALLOWED_SUFFIXES)
        # Kernels are pure array transforms: every numpy.random usage
        # is banned there, including the otherwise-sanctioned seeded
        # API (draws belong to the caller).
        self._kernels_module = "/kernels/" in path
        #: local alias → canonical module ("random", "numpy",
        #: "numpy.random", "time", "datetime")
        self._modules: Dict[str, str] = {}
        #: local alias → canonical class ("datetime.datetime",
        #: "datetime.date")
        self._classes: Dict[str, str] = {}

    # -- imports --------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name in ("random", "numpy", "numpy.random",
                              "time", "datetime"):
                target = ("numpy" if alias.name == "numpy.random"
                          and alias.asname is None else alias.name)
                self._modules[local] = target
            if alias.name == "random":
                self.report(node, "stdlib 'random' draws from "
                                  "process-global state; use "
                                  "numpy SeedSequence-spawned "
                                  "generators instead")

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(node, "importing from stdlib 'random' "
                              "(process-global RNG state); use "
                              "numpy SeedSequence-spawned generators")
            return
        if node.module in ("numpy", "np"):
            for alias in node.names:
                if alias.name == "random":
                    self._modules[alias.asname or "random"] \
                        = "numpy.random"
        if node.module == "numpy.random":
            for alias in node.names:
                if self._kernels_module:
                    self.report(node, f"'numpy.random.{alias.name}' "
                                      f"inside repro.kernels; kernels "
                                      f"are pure array transforms — "
                                      f"draw in the caller and pass "
                                      f"arrays (or a Generator) in")
                elif alias.name not in _SANCTIONED_NP_RANDOM:
                    self.report(node, f"'numpy.random.{alias.name}' "
                                      f"uses the module-level "
                                      f"generator; spawn per-task "
                                      f"streams via SeedSequence")
        if node.module == "time":
            for alias in node.names:
                if alias.name in ("time", "time_ns") \
                        and not self._clocks_allowed:
                    self.report(node, "wall-clock 'time.time' imported"
                                      " outside the observability "
                                      "layer; use time.perf_counter "
                                      "for durations")
        if node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._classes[alias.asname or alias.name] \
                        = f"datetime.{alias.name}"

    # -- calls ----------------------------------------------------------------

    def _module_of(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self._modules.get(node.id) \
                or self._classes.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._module_of(node.value)
            if base == "numpy" and node.attr == "random":
                return "numpy.random"
            if base == "datetime" and node.attr in ("datetime", "date"):
                return f"datetime.{node.attr}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = self._module_of(func.value)
            if base == "random":
                self.report(node, f"'random.{func.attr}' draws from "
                                  f"process-global RNG state; use "
                                  f"numpy SeedSequence-spawned "
                                  f"generators")
            elif base == "numpy.random":
                if self._kernels_module:
                    self.report(node, f"'np.random.{func.attr}' inside "
                                      f"repro.kernels; kernels are "
                                      f"pure array transforms — draw "
                                      f"in the caller and pass arrays "
                                      f"(or a Generator) in")
                elif func.attr not in _SANCTIONED_NP_RANDOM:
                    self.report(node, f"'np.random.{func.attr}' uses "
                                      f"the module-level generator; "
                                      f"spawn per-task streams via "
                                      f"SeedSequence")
                elif func.attr == "default_rng" and not node.args:
                    self.report(node, "'default_rng()' without a seed "
                                      "is entropy-seeded and never "
                                      "reproducible")
            elif base == "time" and func.attr in ("time", "time_ns") \
                    and not self._clocks_allowed:
                self.report(node, f"wall clock 'time.{func.attr}()' "
                                  f"outside the observability layer; "
                                  f"use time.perf_counter for "
                                  f"durations")
            elif base in ("datetime.datetime", "datetime.date") \
                    and func.attr in ("now", "utcnow", "today") \
                    and not self._clocks_allowed:
                self.report(node, f"wall clock '{base.split('.')[1]}"
                                  f".{func.attr}()' outside the "
                                  f"observability layer (trace/"
                                  f"manifest own timestamping)")
        self._check_ordered_consumers(node)

    # -- set-fed dispatch ------------------------------------------------------

    def _check_ordered_consumers(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr

        if name == "parallel_map":
            # fn, items — items may also arrive as a keyword.
            items = node.args[1] if len(node.args) > 1 else None
            for keyword in node.keywords:
                if keyword.arg == "items":
                    items = keyword.value
            if items is not None and _is_set_expr(items):
                self.report(node, "a set's iteration order is hash-"
                                  "dependent; sorted(...) it before "
                                  "dispatching to parallel_map")
            return

        if name == "fingerprint":
            for arg in list(node.args) \
                    + [kw.value for kw in node.keywords]:
                if _is_set_expr(arg):
                    self.report(node, "a set inside a cache key has "
                                      "hash-dependent order; "
                                      "sorted(...) it first")
            return

        if name in _CACHE_METHODS and isinstance(func, ast.Attribute):
            receiver = func.value
            terminal = None
            if isinstance(receiver, ast.Name):
                terminal = receiver.id
            elif isinstance(receiver, ast.Attribute):
                terminal = receiver.attr
            if terminal is None:
                return
            lowered = terminal.lower()
            if "cache" in lowered or "disk" in lowered:
                for arg in list(node.args) \
                        + [kw.value for kw in node.keywords]:
                    if _is_set_expr(arg):
                        self.report(node, "a set inside a cache key "
                                          "has hash-dependent order; "
                                          "sorted(...) it first")
