"""`unit-flow` — unit suffixes must agree *across* call boundaries.

The per-file ``units`` rule catches ``length_um + gap_m`` inside one
expression, but goes blind the moment a suffixed quantity crosses a
call site: ``delay(clock_ps)`` where the callee declares
``def delay(clock_ns: float)`` silently injects a 1000× error.  With
the whole-program index every call site resolved by the graph knows
the callee's parameter names, so this rule propagates argument
suffixes through calls: when an argument identifier and the parameter
it binds to *both* carry registry suffixes, the suffixes must agree in
dimension and SI factor.

The same equivalence the ``units`` rule uses applies — ``_s`` passed
to a ``_sec`` parameter is fine (same dimension, same factor), while
``_ps`` into ``_ns`` (factor drift) or ``_ff`` into ``_ohm``
(dimension drift) is a finding at the call site.
"""

from __future__ import annotations

from repro.analysis.graph import CallGraph, ProjectIndex
from repro.analysis.index import CallSite, FileIndex, FunctionInfo
from repro.analysis.project import ProjectChecker
from repro.units import unit_suffix_of


class UnitFlowChecker(ProjectChecker):
    rule = "unit-flow"
    severity = "warning"
    description = ("suffix-carrying arguments must match the unit "
                   "suffix of the parameter they bind to")
    version = 1

    def check(self, project: ProjectIndex,
              graph: CallGraph) -> None:
        for index in project.files.values():
            for site in index.calls:
                resolved = project.resolve(index, site.callee)
                if resolved is None:
                    continue
                info = project.function(resolved)
                if info is None:
                    continue
                self._check_site(index, site, resolved, info)

    def _check_site(self, index: FileIndex, site: CallSite,
                    resolved: str, info: FunctionInfo) -> None:
        params = list(info.params)
        offset = 0
        if info.is_method:
            head = site.callee.partition(".")[0]
            if head not in ("self", "cls"):
                # Unbound/classmethod-style invocation — argument
                # positions are not statically mappable.
                return
            if params and params[0] in ("self", "cls"):
                offset = 1
        for arg in site.args:
            if arg.name is None:
                continue
            if arg.position is not None:
                position = arg.position + offset
                if position >= len(params):
                    continue    # lands in *args
                param = params[position]
            elif arg.keyword in params:
                param = arg.keyword
            else:
                continue        # lands in **kwargs
            self._check_binding(index, site, resolved, arg.name,
                                param)

    def _check_binding(self, index: FileIndex, site: CallSite,
                       resolved: str, arg_name: str,
                       param: str) -> None:
        arg_suffix = unit_suffix_of(arg_name)
        param_suffix = unit_suffix_of(param)
        if arg_suffix is None or param_suffix is None:
            return
        if arg_suffix.suffix == param_suffix.suffix:
            return
        if (arg_suffix.dimension == param_suffix.dimension
                and arg_suffix.si_factor == param_suffix.si_factor):
            return
        callee = resolved.rsplit(".", 1)[-1]
        if arg_suffix.dimension != param_suffix.dimension:
            detail = (f"{arg_suffix.dimension} into "
                      f"{param_suffix.dimension}")
        else:
            detail = (f"'{arg_suffix.suffix}' into "
                      f"'{param_suffix.suffix}' "
                      f"({arg_suffix.si_factor:g} vs "
                      f"{param_suffix.si_factor:g} in SI)")
        self.report(
            index.path, site.line, site.col,
            f"call to '{callee}' passes '{arg_name}' into parameter "
            f"'{param}' — {detail}; convert before the call")
