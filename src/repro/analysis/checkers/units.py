"""``units``: the SI-units discipline, mechanically enforced.

Two complementary checks, both anchored in the
:data:`repro.units.UNIT_SUFFIXES` registry (one source of truth for
the linter and the runtime):

* **Mixed-suffix arithmetic** — adding, subtracting or comparing two
  identifiers whose unit suffixes disagree (``length_um + gap_m``,
  ``cap_ff - cap_f``) is flagged everywhere.  Multiplication and
  division are exempt: dimensions legitimately combine there
  (``ohms * farads`` is seconds).

* **Bare-float public APIs** — in the unit-sensitive packages
  (``models/``, ``tech/``, ``signoff/``, ``noc/``), a public function
  that takes or returns plain ``float``\\ s must say what unit they are
  in: either every such name carries a registry suffix
  (``length_mm``), or the docstring mentions a unit (``"meters"``,
  ``"ps"``) or declares the value dimensionless (``"fraction"``,
  ``"ratio"``).  This is exactly the "no function ever has to guess
  what unit a bare float is in" contract of :mod:`repro.units`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import Checker, FileContext
from repro.units import (
    DIMENSIONLESS_WORDS,
    SI_BASE_UNITS,
    UNIT_SUFFIXES,
    UnitSuffix,
    unit_suffix_of,
)

#: Packages in which the bare-float public-API check applies.
API_PACKAGES: Tuple[str, ...] = ("models", "tech", "signoff", "noc")


def _docstring_unit_words() -> List[str]:
    """Every docstring spelling that satisfies the units discipline."""
    words = set(DIMENSIONLESS_WORDS)
    words.update(SI_BASE_UNITS.values())
    for entry in UNIT_SUFFIXES.values():
        words.update(word.lower() for word in entry.words)
    # Compound spellings common in EDA docstrings.
    words.update({"f/m", "ohm/m", "ohm-meters", "ohm*um", "um^2",
                  "m^2", "bits/s", "j/k", "1/s", "per second",
                  "per meter"})
    return sorted(words)


_UNIT_WORDS_PATTERN = re.compile(
    "|".join(r"(?<![\w/])" + re.escape(word) + r"(?![\w/])"
             for word in _docstring_unit_words()),
    re.IGNORECASE)


def _mentions_unit(docstring: Optional[str]) -> bool:
    if not docstring:
        return False
    return _UNIT_WORDS_PATTERN.search(docstring) is not None


def _identifier_of(node: ast.AST) -> Optional[str]:
    """The terminal identifier of a name or attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _suffix_of(node: ast.AST) -> Optional[UnitSuffix]:
    identifier = _identifier_of(node)
    if identifier is None:
        return None
    return unit_suffix_of(identifier)


def _is_float_annotation(annotation: Optional[ast.AST]) -> bool:
    return (isinstance(annotation, ast.Name)
            and annotation.id == "float")


class UnitsChecker(Checker):
    """Suffix-mixing arithmetic plus bare-float public APIs."""

    rule = "units"
    severity = "warning"
    description = ("unit-suffix discipline: no mixed-suffix "
                   "arithmetic, no undocumented bare-float public "
                   "APIs in unit-sensitive packages")

    def begin_file(self, context: FileContext) -> None:
        super().begin_file(context)
        parts = context.path.replace("\\", "/").split("/")
        self._api_scope = any(part in API_PACKAGES for part in parts)
        self._class_depth = 0
        self._func_depth = 0

    # -- mixed-suffix arithmetic ---------------------------------------------

    def _check_pair(self, node: ast.AST, left: ast.AST,
                    right: ast.AST, verb: str) -> None:
        left_suffix = _suffix_of(left)
        right_suffix = _suffix_of(right)
        if left_suffix is None or right_suffix is None:
            return
        if left_suffix.suffix == right_suffix.suffix:
            return
        if (left_suffix.dimension == right_suffix.dimension
                and left_suffix.si_factor == right_suffix.si_factor):
            return
        left_name = _identifier_of(left)
        right_name = _identifier_of(right)
        if left_suffix.dimension != right_suffix.dimension:
            detail = (f"{left_suffix.dimension} with "
                      f"{right_suffix.dimension}")
        else:
            detail = (f"'{left_suffix.suffix}' with "
                      f"'{right_suffix.suffix}' "
                      f"({left_suffix.si_factor:g} vs "
                      f"{right_suffix.si_factor:g} in SI)")
        self.report(node, f"{verb} mixes unit suffixes: "
                          f"'{left_name}' {verb}s '{right_name}' — "
                          f"{detail}; convert to one unit first")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            verb = "addition" if isinstance(node.op, ast.Add) \
                else "subtraction"
            self._check_pair(node, node.left, node.right, verb)

    def visit_Compare(self, node: ast.Compare) -> None:
        if len(node.comparators) == 1 and isinstance(
                node.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                              ast.Eq, ast.NotEq)):
            self._check_pair(node, node.left, node.comparators[0],
                             "comparison")

    # -- bare-float public APIs ----------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth += 1

    def leave_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self._func_depth += 1

    def visit_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self._func_depth += 1

    def leave_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_depth -= 1

    def leave_AsyncFunctionDef(self,
                               node: ast.AsyncFunctionDef) -> None:
        self._func_depth -= 1

    def _check_function(self, node) -> None:
        if not self._api_scope or node.name.startswith("_"):
            return
        # Function-local helpers are not public API surface.
        if self._func_depth > 0:
            return
        bare: List[str] = []
        args = list(node.args.posonlyargs) + list(node.args.args) \
            + list(node.args.kwonlyargs)
        for arg in args:
            if arg.arg in ("self", "cls"):
                continue
            if _is_float_annotation(arg.annotation) \
                    and unit_suffix_of(arg.arg) is None:
                bare.append(f"parameter '{arg.arg}'")
        if _is_float_annotation(node.returns) \
                and unit_suffix_of(node.name) is None:
            bare.append("return value")
        if not bare:
            return
        if _mentions_unit(ast.get_docstring(node)):
            return
        owner = "method" if self._class_depth else "function"
        self.report(node, f"public {owner} '{node.name}' has bare "
                          f"float {', '.join(bare)} with no unit "
                          f"suffix and no unit (or 'dimensionless'/"
                          f"'fraction') word in its docstring")
