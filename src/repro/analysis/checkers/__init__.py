"""The concrete ``repro lint`` rules.

Adding a file-level checker is three steps (see
``docs/static-analysis.md``): subclass
:class:`repro.analysis.core.Checker` in a new module here, give it a
unique ``rule`` name, and append the class to :data:`ALL_CHECKERS`.
Interprocedural rules subclass
:class:`repro.analysis.project.ProjectChecker` instead and register in
:data:`PROJECT_CHECKERS` — they run once over the whole-program index
after the per-file walks.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.core import Checker
from repro.analysis.project import ProjectChecker
from repro.analysis.checkers.cache_purity import CachePurityChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.kernel_parity import KernelParityChecker
from repro.analysis.checkers.span_hygiene import SpanHygieneChecker
from repro.analysis.checkers.unit_flow import UnitFlowChecker
from repro.analysis.checkers.units import UnitsChecker
from repro.analysis.checkers.worker_safety import WorkerSafetyChecker
from repro.analysis.checkers.worker_safety_transitive import (
    WorkerSafetyTransitiveChecker,
)

#: Every registered file-level rule, in reporting order.
ALL_CHECKERS: List[Type[Checker]] = [
    UnitsChecker,
    DeterminismChecker,
    WorkerSafetyChecker,
    CachePurityChecker,
    SpanHygieneChecker,
]

#: Every registered whole-program rule, in reporting order.
PROJECT_CHECKERS: List[Type[ProjectChecker]] = [
    KernelParityChecker,
    WorkerSafetyTransitiveChecker,
    UnitFlowChecker,
]

#: rule name → file-level checker class.
CHECKERS_BY_RULE: Dict[str, Type[Checker]] = {
    checker.rule: checker for checker in ALL_CHECKERS
}

#: rule name → whole-program checker class.
PROJECT_CHECKERS_BY_RULE: Dict[str, Type[ProjectChecker]] = {
    checker.rule: checker for checker in PROJECT_CHECKERS
}

__all__ = [
    "ALL_CHECKERS",
    "CHECKERS_BY_RULE",
    "PROJECT_CHECKERS",
    "PROJECT_CHECKERS_BY_RULE",
    "CachePurityChecker",
    "DeterminismChecker",
    "KernelParityChecker",
    "SpanHygieneChecker",
    "UnitFlowChecker",
    "UnitsChecker",
    "WorkerSafetyChecker",
    "WorkerSafetyTransitiveChecker",
]
