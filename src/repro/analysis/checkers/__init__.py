"""The concrete ``repro lint`` rules.

Adding a checker is three steps (see ``docs/static-analysis.md``):
subclass :class:`repro.analysis.core.Checker` in a new module here,
give it a unique ``rule`` name, and append the class to
:data:`ALL_CHECKERS`.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.analysis.core import Checker
from repro.analysis.checkers.cache_purity import CachePurityChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.span_hygiene import SpanHygieneChecker
from repro.analysis.checkers.units import UnitsChecker
from repro.analysis.checkers.worker_safety import WorkerSafetyChecker

#: Every registered rule, in reporting order.
ALL_CHECKERS: List[Type[Checker]] = [
    UnitsChecker,
    DeterminismChecker,
    WorkerSafetyChecker,
    CachePurityChecker,
    SpanHygieneChecker,
]

#: rule name → checker class.
CHECKERS_BY_RULE: Dict[str, Type[Checker]] = {
    checker.rule: checker for checker in ALL_CHECKERS
}

__all__ = [
    "ALL_CHECKERS",
    "CHECKERS_BY_RULE",
    "CachePurityChecker",
    "DeterminismChecker",
    "SpanHygieneChecker",
    "UnitsChecker",
    "WorkerSafetyChecker",
]
