"""`worker-safety-transitive` — the *closure* of pool/cache work must
be deterministic.

The per-file ``worker-safety`` rule inspects only the callable handed
to :func:`repro.runtime.parallel.parallel_map` directly, and
``cache-purity`` only the function computing a
:class:`~repro.runtime.cache.DiskCache` key.  Both contracts are
actually transitive: a helper three calls deep that reads
``os.environ``, consults the wall clock, draws from a process-global
RNG or mutates a module global breaks bit-identical recovery and cache
correctness just as surely.  This rule walks the resolved call graph
from every entry point — each callable submitted to ``parallel_map``
and each function that reads or writes a ``DiskCache`` — and flags any
reachable nondeterminism taint, naming the call chain that reaches it.

Trusted infrastructure under ``repro.runtime`` is the traversal
boundary: the runtime is allowed to consult the environment and the
clock (that is its job — worker resolution, trace timestamps, cache
directories), and its own invariants are covered by the runtime test
suite, so edges are not expanded into it.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.graph import CallGraph, ProjectIndex
from repro.analysis.project import ProjectChecker
from repro.analysis.checkers.determinism import CLOCK_ALLOWED_SUFFIXES

#: Modules whose interior is trusted and not traversed.
_RUNTIME_PREFIX = "repro.runtime"


def _is_runtime(module: str) -> bool:
    return module == _RUNTIME_PREFIX \
        or module.startswith(_RUNTIME_PREFIX + ".")


class WorkerSafetyTransitiveChecker(ProjectChecker):
    rule = "worker-safety-transitive"
    severity = "error"
    description = ("the call closure of parallel_map callables and "
                   "DiskCache-scoped functions must be free of "
                   "clocks, global RNG, env reads and mutable-global "
                   "writes")
    version = 1

    def check(self, project: ProjectIndex,
              graph: CallGraph) -> None:
        #: entry symbol → (anchor path, line, how it entered)
        entries: Dict[str, Tuple[str, int, str]] = {}
        self._collect_pool_entries(project, entries)
        self._collect_cache_entries(project, entries)
        if not entries:
            return
        stop = {module for module in project.modules
                if _is_runtime(module)}
        reached = graph.closure(entries, stop=stop)
        # Attribute each tainted reachable function to every entry
        # that reaches it, anchored at the entry's site.
        for name, chain in sorted(reached.items()):
            index = project.file_of(name)
            info = project.function(name)
            if index is None or info is None:
                continue
            if _is_runtime(index.module):
                continue    # runtime facts are the runtime's business
            for taint in info.taints:
                if taint.kind == "wall-clock" and index.path.endswith(
                        CLOCK_ALLOWED_SUFFIXES):
                    continue
                entry = chain[0]
                path, line, how = entries[entry]
                via = " -> ".join(part.rsplit(".", 2)[-1]
                                  for part in chain)
                self.report(
                    path, line, 1,
                    f"'{entry.rsplit('.', 1)[-1]}' {how} but its "
                    f"closure {taint.detail} "
                    f"({index.path}:{taint.line}, via {via}) — "
                    f"{taint.kind} breaks deterministic replay")

    # -- entry discovery --------------------------------------------------

    def _collect_pool_entries(
            self, project: ProjectIndex,
            entries: Dict[str, Tuple[str, int, str]]) -> None:
        """Functions passed (by name) as ``fn`` to parallel_map."""
        for index in project.files.values():
            for site in index.calls:
                if site.callee.rsplit(".", 1)[-1] != "parallel_map":
                    continue
                fn_name = None
                for arg in site.args:
                    if arg.position == 0 or arg.keyword == "fn":
                        fn_name = arg.name
                        break
                if fn_name is None:
                    continue
                resolved = project.resolve(index, fn_name)
                if resolved is not None and resolved not in entries:
                    entries[resolved] = (
                        index.path, site.line,
                        "is submitted to parallel_map")

    def _collect_cache_entries(
            self, project: ProjectIndex,
            entries: Dict[str, Tuple[str, int, str]]) -> None:
        """Functions that read/write a DiskCache themselves."""
        for name, (index, info) in project.symbols.items():
            if not info.cache_scoped or _is_runtime(index.module):
                continue
            entries.setdefault(
                name,
                (index.path, info.line, "computes DiskCache keys"))
