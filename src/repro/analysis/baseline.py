"""Baseline files: grandfathered findings the lint gate ignores.

A baseline is a committed JSON file mapping line-independent finding
fingerprints (rule + path + message) to an occurrence count.  ``repro
lint --write-baseline`` regenerates it from the current tree; on later
runs every finding whose fingerprint still has budget in the baseline
is filtered out, so the gate fails only on *new* findings (or on old
ones that moved to a different file / changed message — both of which
genuinely are new findings).

Counts (rather than a plain set) make duplicate findings behave: two
identical violations in one file consume two baseline slots, so fixing
one and introducing another elsewhere cannot cancel out.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.analysis.core import Finding

#: Bump when the baseline layout changes incompatibly.
BASELINE_SCHEMA = 1


def write_baseline(path: Union[str, Path],
                   findings: List[Finding]) -> Path:
    """Serialize ``findings`` as the new baseline; returns the path."""
    counts = Counter(finding.fingerprint() for finding in findings)
    entries = [
        {"rule": fingerprint.split("::", 2)[0],
         "path": fingerprint.split("::", 2)[1],
         "message": fingerprint.split("::", 2)[2],
         "count": count}
        for fingerprint, count in sorted(counts.items())
    ]
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Fingerprint → grandfathered count, from a baseline file.

    Raises :class:`ValueError` on a malformed or wrong-schema file —
    a stale baseline must fail loudly, not silently admit findings.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) \
            or payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"unsupported baseline schema in {path}")
    counts: Dict[str, int] = {}
    for entry in payload.get("findings", []):
        try:
            fingerprint = (f"{entry['rule']}::{entry['path']}"
                           f"::{entry['message']}")
            count = int(entry.get("count", 1))
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed baseline entry in {path}: "
                             f"{entry!r}") from exc
        counts[fingerprint] = counts.get(fingerprint, 0) + count
    return counts


def apply_baseline(findings: List[Finding],
                   baseline: Dict[str, int]
                   ) -> Tuple[List[Finding], int]:
    """Split findings into (new, number grandfathered).

    Each finding consumes one unit of its fingerprint's baseline
    budget; findings beyond the budget are new.
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        fingerprint = finding.fingerprint()
        budget = remaining.get(fingerprint, 0)
        if budget > 0:
            remaining[fingerprint] = budget - 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed
