"""Baseline files: grandfathered findings the lint gate ignores.

A baseline is a committed JSON file mapping line-independent finding
fingerprints (rule + path + message) to an occurrence count.  ``repro
lint --write-baseline`` regenerates it from the current tree; on later
runs every finding whose fingerprint still has budget in the baseline
is filtered out, so the gate fails only on *new* findings (or on old
ones that moved to a different file / changed message — both of which
genuinely are new findings).

Counts (rather than a plain set) make duplicate findings behave: two
identical violations in one file consume two baseline slots, so fixing
one and introducing another elsewhere cannot cancel out.

:data:`~repro.analysis.core.SYNTAX_RULE` findings are exempt from the
whole mechanism: a file that does not parse cannot be analyzed at all,
so grandfathering it would silently blind every other rule to that
file.  ``write_baseline`` refuses to record them and
``apply_baseline`` refuses to suppress them, even against a
hand-edited baseline entry.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.analysis.core import Finding, SYNTAX_RULE

#: Bump when the baseline layout changes incompatibly.
BASELINE_SCHEMA = 1


def write_baseline(path: Union[str, Path],
                   findings: List[Finding]) -> Path:
    """Serialize ``findings`` as the new baseline; returns the path.

    Syntax findings are never grandfathered — they are dropped here
    so a hand-run ``--write-baseline`` over a broken tree cannot
    smuggle an unparseable file past the gate.
    """
    counts = Counter(finding.fingerprint() for finding in findings
                     if finding.rule != SYNTAX_RULE)
    entries = [
        {"rule": fingerprint.split("::", 2)[0],
         "path": fingerprint.split("::", 2)[1],
         "message": fingerprint.split("::", 2)[2],
         "count": count}
        for fingerprint, count in sorted(counts.items())
    ]
    payload = {"schema": BASELINE_SCHEMA, "findings": entries}
    path = Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Fingerprint → grandfathered count, from a baseline file.

    Raises :class:`ValueError` on a malformed or wrong-schema file —
    a stale baseline must fail loudly, not silently admit findings.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) \
            or payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(f"unsupported baseline schema in {path}")
    counts: Dict[str, int] = {}
    for entry in payload.get("findings", []):
        try:
            fingerprint = (f"{entry['rule']}::{entry['path']}"
                           f"::{entry['message']}")
            count = int(entry.get("count", 1))
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed baseline entry in {path}: "
                             f"{entry!r}") from exc
        counts[fingerprint] = counts.get(fingerprint, 0) + count
    return counts


def apply_baseline(findings: List[Finding],
                   baseline: Dict[str, int]
                   ) -> Tuple[List[Finding], int]:
    """Split findings into (new, number grandfathered).

    Each finding consumes one unit of its fingerprint's baseline
    budget; findings beyond the budget are new.
    :data:`~repro.analysis.core.SYNTAX_RULE` findings always come
    back as new, whatever the baseline says.
    """
    remaining = dict(baseline)
    fresh: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if finding.rule == SYNTAX_RULE:
            fresh.append(finding)
            continue
        fingerprint = finding.fingerprint()
        budget = remaining.get(fingerprint, 0)
        if budget > 0:
            remaining[fingerprint] = budget - 1
            suppressed += 1
        else:
            fresh.append(finding)
    return fresh, suppressed


def prune_baseline(path: Union[str, Path],
                   findings: List[Finding]) -> Tuple[int, int]:
    """Drop baseline entries the current tree no longer produces.

    ``findings`` must be the *unfiltered* findings of a full scan over
    the baseline's original coverage.  Each fingerprint's count is
    clamped to what the tree still emits (entries that fell to zero
    disappear), so fixed violations lose their budget instead of
    lingering as camouflage for regressions.  Returns
    ``(entries kept, occurrences pruned)`` and rewrites the file in
    place.
    """
    baseline = read_baseline(path)
    current = Counter(finding.fingerprint() for finding in findings
                      if finding.rule != SYNTAX_RULE)
    kept: List[Finding] = []
    pruned = 0
    for fingerprint, budget in sorted(baseline.items()):
        allowed = min(budget, current.get(fingerprint, 0))
        pruned += budget - allowed
        rule, finding_path, message = fingerprint.split("::", 2)
        kept.extend(
            Finding(path=finding_path, line=0, col=0, rule=rule,
                    message=message)
            for _ in range(allowed))
    write_baseline(path, kept)
    return len(set(f.fingerprint() for f in kept)), pruned
