"""The incremental, parallel lint engine (dogfooding the runtime).

Whole-program analysis costs more than one AST walk per file, so the
engine earns it back with the repository's own machinery:

* **Incremental** — each file's parse products (its per-file findings
  plus its :class:`~repro.analysis.index.FileIndex`) are cached in a
  ``DiskCache("lint")`` namespace, keyed on the file's content hash,
  its display path, and the (name, version) set of the enabled
  file-level rules plus the index/graph schema numbers.  Touch one
  file and only that file re-parses; bump a rule's ``version`` and
  exactly the affected results invalidate.
* **Parallel** — the per-file work fans out through
  :func:`repro.runtime.parallel.parallel_map` (the CLI's ``--workers``
  flag applies), with worker-side metrics merged back into the
  coordinator the same way every other subcommand does it.
* **Observable** — ``lint.files`` / ``lint.cache.hit`` /
  ``lint.cache.miss`` counters and the ``lint.walk_seconds``
  histogram land in :data:`~repro.runtime.metrics.METRICS`, so
  ``repro lint --stats`` shows warm/cold behaviour directly.

The interprocedural rules then run once, in-process, over the
aggregated indexes; their findings are restricted to the scanned
files so ``repro lint some/subtree`` never reports on code outside
what was asked for (the ``src/repro`` tree is always *indexed* for
call-graph context, scanned or not).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.checkers import (
    ALL_CHECKERS,
    CHECKERS_BY_RULE,
    PROJECT_CHECKERS,
    PROJECT_CHECKERS_BY_RULE,
)
from repro.analysis.core import (
    Finding,
    _parse_noqa,
    check_source,
    collect_files,
    display_path,
)
from repro.analysis.graph import (
    GRAPH_SCHEMA,
    CallGraph,
    ProjectIndex,
    build_graph,
)
from repro.analysis.index import INDEX_SCHEMA, FileIndex, index_source
from repro.runtime.cache import DiskCache
from repro.runtime.metrics import METRICS
from repro.runtime.parallel import parallel_map

#: Bump when the cached per-file payload layout changes.
CACHE_SCHEMA = 1


def split_rules(rules: Optional[Sequence[str]]
                ) -> Tuple[List[str], List[str]]:
    """Validated (file rules, project rules) for a ``--rules`` request.

    ``None`` selects everything.  An empty selection and unknown names
    are both usage errors (:class:`ValueError`) listing the valid rule
    names — silently linting nothing is how gates rot.
    """
    file_names = [cls.rule for cls in ALL_CHECKERS]
    project_names = [cls.rule for cls in PROJECT_CHECKERS]
    if rules is None:
        return file_names, project_names
    names = [name for name in rules if name]
    available = ", ".join(sorted(file_names + project_names))
    if not names:
        raise ValueError(
            f"no rules selected; available: {available}")
    unknown = sorted(set(names)
                     - set(file_names) - set(project_names))
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(unknown)}; available: "
            f"{available}")
    return ([name for name in names if name in CHECKERS_BY_RULE],
            [name for name in names
             if name in PROJECT_CHECKERS_BY_RULE])


def _cache_salt(file_rules: Sequence[str]) -> Dict[str, Any]:
    """The rule/schema portion of the per-file cache key."""
    return {
        "schemas": [CACHE_SCHEMA, INDEX_SCHEMA, GRAPH_SCHEMA],
        "python": list(sys.version_info[:2]),
        "rules": {name: CHECKERS_BY_RULE[name].version
                  for name in sorted(file_rules)},
    }


def _file_task(task: Tuple[str, str, Tuple[str, ...],
                           Dict[str, Any], Optional[str]]
               ) -> Dict[str, Any]:
    """Lint + index one file, through the cache (pool-safe)."""
    path_str, display, file_rules, salt, cache_dir = task
    source = Path(path_str).read_text(encoding="utf-8")
    cache = DiskCache(
        "lint",
        directory=Path(cache_dir) if cache_dir else None)
    key = {"path": display, "source": source, "salt": salt}
    cached = cache.get(key, kind="file")
    if cached is not None:
        METRICS.count("lint.cache.hit")
        return cached
    METRICS.count("lint.cache.miss")
    with METRICS.observed("lint.walk_seconds"):
        checkers = [CHECKERS_BY_RULE[name]() for name in file_rules]
        findings = check_source(source, display, checkers)
        noqa = {line: sorted(rules)
                for line, rules in _parse_noqa(source).items()}
        index = index_source(source, display, noqa=noqa)
    payload = {
        "findings": [finding.to_json() for finding in findings],
        "index": index.to_payload(),
    }
    cache.put(key, payload, kind="file")
    return payload


@dataclass
class Scan:
    """Everything one engine pass over a file set produced."""

    findings: List[Finding]
    files_scanned: int
    indexes: List[FileIndex] = field(default_factory=list)
    _graph: Optional[CallGraph] = None

    def graph(self) -> CallGraph:
        """The resolved call graph over every indexed file (built on
        first use)."""
        if self._graph is None:
            self._graph = build_graph(self.indexes)
        return self._graph


def _finding_from_json(entry: Dict[str, Any]) -> Finding:
    return Finding(path=entry["path"], line=entry["line"],
                   col=entry["col"], rule=entry["rule"],
                   message=entry["message"],
                   severity=entry["severity"])


def _context_files() -> List[Path]:
    """The ``src/repro`` files the interprocedural rules always need
    for call-graph context, whether or not they were asked to be
    scanned."""
    import repro
    root = Path(repro.__file__).parent
    try:
        return collect_files([root])
    except FileNotFoundError:        # pragma: no cover - installed zip
        return []


def scan_paths(paths: Sequence[Path],
               rules: Optional[Sequence[str]] = None,
               exclude: Sequence[str] = (),
               cache_dir: Optional[Path] = None) -> Scan:
    """Run the full engine: per-file rules (cached, parallel) plus
    the whole-program rules over the aggregate."""
    file_rules, project_rules = split_rules(rules)
    files = collect_files(paths, exclude=exclude)
    scanned_display = [display_path(path) for path in files]
    scanned_set = set(scanned_display)

    # Context files are indexed with the same cached tasks but are
    # not scanned: their per-file findings are dropped and project
    # findings are filtered back to the scanned set.
    context: List[Tuple[Path, str]] = []
    if project_rules:
        for path in _context_files():
            display = display_path(path)
            if display not in scanned_set:
                context.append((path, display))

    salt = _cache_salt(file_rules)
    cache_dir_str = str(cache_dir) if cache_dir is not None else None
    tasks = [(str(path), display, tuple(file_rules), salt,
              cache_dir_str)
             for path, display in
             list(zip(files, scanned_display)) + context]

    findings: List[Finding] = []
    indexes: List[FileIndex] = []
    with METRICS.timer("lint.scan"):
        payloads = parallel_map(_file_task, tasks, label="lint")
        for (_, display, *_rest), payload in zip(tasks, payloads):
            indexes.append(FileIndex.from_payload(payload["index"]))
            if display in scanned_set:
                findings.extend(_finding_from_json(entry)
                                for entry in payload["findings"])

        scan = Scan(findings=findings, files_scanned=len(files),
                    indexes=indexes)
        if project_rules:
            project = ProjectIndex(indexes)
            graph = CallGraph(project)
            scan._graph = graph
            for name in project_rules:
                checker = PROJECT_CHECKERS_BY_RULE[name]()
                findings.extend(
                    finding
                    for finding in checker.run(project, graph)
                    if finding.path in scanned_set)

    METRICS.count("lint.files", len(files))
    for finding in findings:
        METRICS.count(f"lint.findings.{finding.rule}")
    scan.findings = sorted(findings, key=Finding.sort_key)
    return scan
