"""The visitor-dispatch core of the ``repro lint`` static analyzers.

One AST walk per file serves every registered checker: the walker
visits each node once and dispatches to every checker that defines a
``visit_<NodeType>`` method (and, on the way back out, a
``leave_<NodeType>`` method, which is what scope-tracking checkers
hang their teardown on).  Checkers are tiny classes — a rule name, a
severity, and a handful of visit methods that call :meth:`Checker.report`.

Suppression and grandfathering:

* ``# repro: noqa`` on a flagged line suppresses every rule on that
  line; ``# repro: noqa[units,determinism]`` suppresses only the named
  rules.
* A committed baseline file (see :mod:`repro.analysis.baseline`)
  grandfathers known findings by line-independent fingerprint, so the
  lint gate only fails on *new* findings.

Nothing here imports the checkers; :mod:`repro.analysis.checkers`
registers the concrete rules and :func:`repro.analysis.run_lint` ties
the pieces together.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Rule name of the pseudo-finding emitted for unparseable files.
SYNTAX_RULE = "syntax"

#: ``# repro: noqa`` / ``# repro: noqa[rule-a,rule-b]``
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\- ]+)\])?")

#: noqa marker meaning "every rule".
_ALL_RULES: FrozenSet[str] = frozenset({"*"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"

    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file.

        Deliberately excludes line/column so that unrelated edits above
        a grandfathered finding do not un-baseline it.
        """
        return f"{self.rule}::{self.path}::{self.message}"

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity}: {self.rule}: {self.message}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class FileContext:
    """Everything the checkers may need to know about one file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.noqa: Dict[int, FrozenSet[str]] = _parse_noqa(source)

    def is_suppressed(self, line: int, rule: str) -> bool:
        rules = self.noqa.get(line)
        if rules is None:
            return False
        return rules is _ALL_RULES or "*" in rules or rule in rules


def _parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number → the rules suppressed on that line."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_PATTERN.search(text)
        if match is None:
            continue
        names = match.group(1)
        if names is None:
            suppressions[number] = _ALL_RULES
        else:
            suppressions[number] = frozenset(
                name.strip() for name in names.split(",")
                if name.strip())
    return suppressions


class Checker:
    """Base class of one lint rule.

    Subclasses set :attr:`rule`, :attr:`severity` and
    :attr:`description`, then define any number of
    ``visit_<NodeType>`` / ``leave_<NodeType>`` methods.  The walker
    calls :meth:`begin_file` before the walk and :meth:`end_file`
    after it; findings accumulate via :meth:`report`.
    """

    rule: str = ""
    severity: str = "error"
    description: str = ""
    #: bump when the rule's semantics change — folded into the
    #: incremental lint cache key, so stale per-file results are
    #: invalidated exactly when the rule could produce new ones.
    version: int = 1

    def __init__(self) -> None:
        self._enter: Dict[type, Callable[[ast.AST], None]] = {}
        self._leave: Dict[type, Callable[[ast.AST], None]] = {}
        for name in dir(self):
            if name.startswith("visit_"):
                node_type = getattr(ast, name[len("visit_"):], None)
                if node_type is not None:
                    self._enter[node_type] = getattr(self, name)
            elif name.startswith("leave_"):
                node_type = getattr(ast, name[len("leave_"):], None)
                if node_type is not None:
                    self._leave[node_type] = getattr(self, name)
        self.context: Optional[FileContext] = None
        self.findings: List[Finding] = []

    # -- lifecycle ----------------------------------------------------------

    def begin_file(self, context: FileContext) -> None:
        """Per-file setup; subclasses overriding must call super()."""
        self.context = context
        self.findings = []

    def end_file(self) -> None:
        """Per-file teardown hook."""

    # -- reporting ----------------------------------------------------------

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding at ``node`` (noqa is applied by the runner)."""
        assert self.context is not None
        self.findings.append(Finding(
            path=self.context.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            rule=self.rule,
            message=message,
            severity=self.severity,
        ))

    # -- dispatch (called by the walker) -------------------------------------

    def dispatch_enter(self, node: ast.AST) -> None:
        method = self._enter.get(type(node))
        if method is not None:
            method(node)

    def dispatch_leave(self, node: ast.AST) -> None:
        method = self._leave.get(type(node))
        if method is not None:
            method(node)


def _walk(node: ast.AST, checkers: Sequence[Checker]) -> None:
    for checker in checkers:
        checker.dispatch_enter(node)
    for child in ast.iter_child_nodes(node):
        _walk(child, checkers)
    for checker in checkers:
        checker.dispatch_leave(node)


def check_source(source: str, path: str,
                 checkers: Sequence[Checker]) -> List[Finding]:
    """Run ``checkers`` over one in-memory source file.

    Returns the findings that survive ``# repro: noqa`` suppression,
    sorted by location.  A file that does not parse yields a single
    :data:`SYNTAX_RULE` finding (which cannot be suppressed — fix it).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 0,
                        col=(exc.offset or 0), rule=SYNTAX_RULE,
                        message=f"file does not parse: {exc.msg}")]
    context = FileContext(path, source, tree)
    for checker in checkers:
        checker.begin_file(context)
    _walk(tree, checkers)
    findings: List[Finding] = []
    for checker in checkers:
        checker.end_file()
        for finding in checker.findings:
            if not context.is_suppressed(finding.line, finding.rule):
                findings.append(finding)
    return sorted(findings, key=Finding.sort_key)


def check_file(path: Path,
               checkers: Sequence[Checker],
               display_path: Optional[str] = None) -> List[Finding]:
    """Run ``checkers`` over one file on disk."""
    source = path.read_text(encoding="utf-8")
    return check_source(source, display_path or str(path), checkers)


def collect_files(paths: Iterable[Path],
                  exclude: Sequence[str] = ()) -> List[Path]:
    """Expand files and directories into the ``.py`` files to scan.

    Directories are walked recursively; ``__pycache__``, hidden
    directories, and any walked file whose posix path contains one of
    the ``exclude`` fragments are skipped.  A path that names a file
    directly is always scanned — asking for it by name overrides every
    exclusion.  A named path that does not exist raises
    :class:`FileNotFoundError` (a usage error — the CLI maps it to
    exit code 2).
    """
    collected: List[Path] = []
    for path in paths:
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            collected.append(path)
            continue
        for candidate in sorted(path.rglob("*.py")):
            posix = candidate.as_posix()
            if "__pycache__" in candidate.parts:
                continue
            if any(part.startswith(".") and part not in (".", "..")
                   for part in candidate.parts):
                continue
            if any(fragment in posix for fragment in exclude):
                continue
            collected.append(candidate)
    # De-duplicate while preserving order (overlapping arguments).
    seen = set()
    unique: List[Path] = []
    for path in collected:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def display_path(path: Path) -> str:
    """Stable, repo-relative rendering when possible (for baselines)."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()
