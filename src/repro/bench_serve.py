"""Serving benchmarks: latency, throughput and the bit-equality gate.

``repro bench serve`` hosts a real :class:`repro.serve.ReproServer`
in-process (ephemeral TCP port, warm worker shards), drives it with
the seeded load generator at N concurrent keep-alive clients, and
writes ``BENCH_serve.json``.  The run gates on the service's whole
contract, not just speed:

* **bit-equality** — every load-generator exchange (plus one ``mc``
  and one ``design_batch`` probe) is replayed through
  :func:`repro.serve.core.execute_query` in the bench process and the
  served result must compare equal; JSON floats round-trip through
  Python's shortest ``repr``, so equal here means bit-identical
  doubles;
* **coalescing engaged** — the request-weighted ``serve.batch_size``
  histogram's p50 must exceed 1 (the median request shared its kernel
  batch with at least one peer);
* **no dropped requests** — every client request must be answered.

Latency percentiles are client-observed (connect-to-parse), which is
what a caller of the service actually experiences; the server-side
``serve.latency_seconds`` histogram rides along in the report for the
queueing-delay view.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime import METRICS

#: Bump when the BENCH_serve.json layout changes incompatibly.
BENCH_SCHEMA = 1

#: Concurrent clients / requests per client (full / --quick).
DEFAULT_CLIENTS = 32
QUICK_CLIENTS = 8
DEFAULT_REQUESTS = 8
QUICK_REQUESTS = 4

#: How many load-generator exchanges the bit-equality gate replays.
EQUALITY_REPLAYS = 24

#: The out-of-band probes the gate also replays (one per op the load
#: generator doesn't emit).
PROBE_DOCUMENTS: Tuple[Dict[str, Any], ...] = (
    {"op": "design_batch", "lengths_mm": [1.0, 2.5, 4.0]},
    {"op": "mc", "length_mm": 2.0, "samples": 48, "seed": 2010,
     "engine": "kernel", "estimator": "plain"},
)


async def _run_session(config, *, clients: int,
                       requests_per_client: int, seed: int,
                       node: str, bus_width: int) -> Dict[str, Any]:
    """Host the server, run the load, replay for bit-equality."""
    from repro.serve.core import execute_query
    from repro.serve.loadgen import (
        _open,
        _roundtrip,
        run_load,
        tcp_endpoint,
    )
    from repro.serve.protocol import parse_query
    from repro.serve.server import ReproServer

    server = ReproServer(config)
    await server.start()
    try:
        endpoint = tcp_endpoint(config.host, server.port)
        report = await run_load(
            endpoint, clients=clients,
            requests_per_client=requests_per_client, seed=seed,
            node=node, bus_width=bus_width)

        probes: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
        reader, writer = await _open(endpoint)
        try:
            for document in PROBE_DOCUMENTS:
                probes.append((document, await _roundtrip(
                    reader, writer, document)))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
    finally:
        await server.close()

    stride = max(1, len(report.exchanges) // EQUALITY_REPLAYS)
    replays = list(report.exchanges[::stride])[:EQUALITY_REPLAYS]
    replays.extend(probes)
    mismatches = 0
    for document, response in replays:
        direct = execute_query(parse_query(document),
                               config.memo_entries)
        if response.get("result") != direct or not response.get("ok"):
            mismatches += 1
    return {
        "load": report,
        "replayed": len(replays),
        "mismatches": mismatches,
    }


def run_serve_bench(node: str = "90nm", quick: bool = False,
                    clients: Optional[int] = None,
                    requests: Optional[int] = None,
                    seed: int = 2010,
                    output: str = "BENCH_serve.json",
                    history: Optional[str] = None
                    ) -> Tuple[int, Dict[str, Any]]:
    """Run the serving bench, write ``output``, return (status, report).

    Status is 1 when any gate fails: a bit-equality mismatch, batch
    p50 not above 1, or a dropped request.  Appends one ``"serve"``
    record (latency p50/p99, throughput) to the registry history.
    """
    from repro import bench_registry
    from repro.runtime.manifest import run_environment, utc_timestamp
    from repro.serve.config import resolve_config

    if clients is None:
        clients = QUICK_CLIENTS if quick else DEFAULT_CLIENTS
    if requests is None:
        requests = QUICK_REQUESTS if quick else DEFAULT_REQUESTS
    bus_width = 32
    config = resolve_config(port=0, shards=2, window_ms=5,
                            max_batch=64)

    started = time.perf_counter()
    session = asyncio.run(_run_session(
        config, clients=clients, requests_per_client=requests,
        seed=seed, node=node, bus_width=bus_width))
    wall_seconds = time.perf_counter() - started
    load = session["load"]

    batch_histogram = METRICS.histogram("serve.batch_size")
    batch_p50 = (batch_histogram.quantile(0.5)
                 if batch_histogram is not None else None)
    batch_p95 = (batch_histogram.quantile(0.95)
                 if batch_histogram is not None else None)
    counters = METRICS.to_payload()["counters"]

    expected = clients * requests
    gates = {
        "bit_equal": session["mismatches"] == 0,
        "coalescing_engaged": (batch_p50 is not None
                               and batch_p50 > 1.0),
        "all_answered": (load.requests == expected
                         and load.failures == 0),
    }
    status = 0 if all(gates.values()) else 1

    latency_p50 = load.latency_quantile(0.5)
    latency_p99 = load.latency_quantile(0.99)
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "generated_at": utc_timestamp(),
        "node": node,
        "quick": quick,
        "env": run_environment(),
        "config": {
            "clients": clients,
            "requests_per_client": requests,
            "seed": seed,
            "bus_width": bus_width,
            "shards": config.shards,
            "window_ms": config.window_ms,
            "max_batch": config.max_batch,
            "memo_entries": config.memo_entries,
        },
        "load": {
            "requests": load.requests,
            "expected_requests": expected,
            "failures": load.failures,
            "wall_seconds": load.wall_seconds,
            "throughput_rps": load.throughput,
            "latency_p50_s": latency_p50,
            "latency_p99_s": latency_p99,
        },
        "server": {
            "batch_size_p50": batch_p50,
            "batch_size_p95": batch_p95,
            "batches": counters.get("serve.batches", 0),
            "requests_total": counters.get("serve.requests", 0),
            "errors": counters.get("serve.errors", 0),
            "worker_restarts": counters.get("serve.worker_restart",
                                            0),
        },
        "equality": {
            "replayed": session["replayed"],
            "mismatches": session["mismatches"],
        },
        "gates": gates,
        "bench_wall_seconds": wall_seconds,
    }

    record = bench_registry.build_record(
        "serve", node=node, quick=quick,
        config=dict(report["config"]),
        samples=[
            bench_registry.BenchSample(
                name="latency_p50", value=latency_p50, n=expected),
            bench_registry.BenchSample(
                name="latency_p99", value=latency_p99, n=expected),
        ],
        generated_at=report["generated_at"])
    history_path = bench_registry.append_record(record, history)
    report["history_path"] = str(history_path)

    verdicts = {name: "ok" if passed else "FAIL"
                for name, passed in gates.items()}
    report["formatted"] = [
        (f"{clients} clients x {requests} requests  "
         f"p50 {latency_p50 * 1e3:7.2f} ms  "
         f"p99 {latency_p99 * 1e3:7.2f} ms  "
         f"{load.throughput:8.1f} req/s"),
        (f"coalescing: batch p50 {batch_p50}  p95 {batch_p95}  "
         f"over {counters.get('serve.batches', 0)} batches "
         f"[{verdicts['coalescing_engaged']}]"),
        (f"bit-equality: {session['replayed']} replays, "
         f"{session['mismatches']} mismatches "
         f"[{verdicts['bit_equal']}]"),
        (f"answered {load.requests}/{expected} "
         f"({load.failures} failures) [{verdicts['all_answered']}]"),
    ]
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return status, report
