"""Batched LUT interpolation lane (the characterization tier's hot path).

Three public kernels, each registered in :mod:`repro.kernels.parity`:

* :func:`interpolate_trilinear` — gather + fused multilinear weights
  over the ``(size, length, count)`` grid, the batch mirror of
  :func:`repro.luts.interp.trilinear` (same bracketing, same lerp
  form, same count→length→size reduction order, so one-lane batched
  lookups match scalar lookups bit-for-bit);
* :func:`line_delay_first_order` — the Monte-Carlo lane: nominal plus
  the inner product of ``(factors - 1)`` with precomputed per-stage
  sensitivity weights, all draws in one call;
* :func:`evaluate_line_lut` — the LUT-served form of
  :func:`repro.kernels.line.evaluate_line_batch`: delay and slew from
  the tables, power and area from the exact closed forms (they are
  O(1) already, and keeping them exact keeps the min-power objective
  honest).

Timing tables serve through *log-value* interpolation over log
size/length coordinates (see :data:`repro.luts.artifact.LOG_TABLES`):
queries log-transform with ``np.log``, results exponentiate with
``np.exp`` — the same functions the scalar path wraps in ``float``,
which keeps scalar and batched lookups bitwise identical.

The private ``_minimize_power_under_delay`` fast path exploits the
interpolated surface directly: along the size axis the *log*-delay
surface is piecewise linear (so the served delay is monotone within a
cell and bounded by its corner values), and the smallest size meeting
a delay bound is a cell crossing solved in closed form — no bisection,
no per-iteration batches.  Its arithmetic operates on profile values
that are bitwise identical to :func:`interpolate_trilinear` at the
same query points.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels import repeater as krepeater
from repro.kernels import wire as kwire
from repro.kernels.line import LineBatch
from repro.runtime.metrics import METRICS
from repro.runtime.trace import span


def serves_model(model: object) -> bool:
    """True when ``model`` is a LUT model the lanes here can serve."""
    from repro.luts.model import LUTInterconnectModel
    return type(model) is LUTInterconnectModel


def _bracket(axis: np.ndarray, values: np.ndarray
             ) -> Tuple[np.ndarray, np.ndarray]:
    """(lower index, fraction) per lane; fractions clamp to [0, 1]."""
    idx = np.searchsorted(axis, values, side="right") - 1
    idx = np.clip(idx, 0, axis.size - 2)
    span_ = values - axis[idx]
    frac = span_ / (axis[idx + 1] - axis[idx])
    return idx, np.clip(frac, 0.0, 1.0)


def _lerp(low: np.ndarray, high: np.ndarray, frac: np.ndarray
          ) -> np.ndarray:
    """Linear interpolation ``low + (high - low) * frac``."""
    return low + (high - low) * frac


def interpolate_trilinear(
    table: np.ndarray,
    size_axis: np.ndarray,
    length_axis: np.ndarray,
    count_axis: np.ndarray,
    size: np.ndarray,
    length: np.ndarray,
    count: np.ndarray,
) -> np.ndarray:
    """Trilinear lookup of many ``(size, length, count)`` lanes.

    Same reduction order as the scalar
    :func:`repro.luts.interp.trilinear` (count, then length, then
    size); queries clamp to the grid edges.
    """
    i, fs = _bracket(size_axis, size)
    j, fl = _bracket(length_axis, length)
    k, fc = _bracket(count_axis, count)
    i1 = i + 1
    j1 = j + 1
    k1 = k + 1
    c00 = _lerp(table[i, j, k], table[i, j, k1], fc)
    c01 = _lerp(table[i, j1, k], table[i, j1, k1], fc)
    c10 = _lerp(table[i1, j, k], table[i1, j, k1], fc)
    c11 = _lerp(table[i1, j1, k], table[i1, j1, k1], fc)
    c0 = _lerp(c00, c01, fl)
    c1 = _lerp(c10, c11, fl)
    return _lerp(c0, c1, fs)


def line_delay_first_order(nominal: float, weights: np.ndarray,
                           factors: np.ndarray) -> np.ndarray:
    """Delays (s) of every factor row around a tabulated nominal.

    ``factors`` has shape ``(samples, stages, 4)`` in the factor
    order of :mod:`repro.kernels.variation`; ``weights`` is the
    ``(stages, 4)`` sensitivity matrix (seconds per unit factor) from
    :meth:`repro.luts.model.LUTInterconnectModel.mc_response`.  The
    scalar mirror is :func:`repro.luts.model.first_order_line_delay`.
    """
    shift = factors - 1.0
    return nominal + (shift * weights).sum(axis=(1, 2))


def _served_lanes(model, sizes: np.ndarray, lengths: np.ndarray,
                  counts_f: np.ndarray, log_sizes: np.ndarray,
                  log_lengths: np.ndarray) -> np.ndarray:
    """Boolean lane mask: inside the gridded region AND every corner
    of the enclosing cell valid (the interpolated validity mask of a
    cell is exactly 1.0 iff all its contributing corners are 1.0)."""
    spec = model.artifact.spec
    in_range = ((sizes >= spec.sizes[0]) & (sizes <= spec.sizes[-1])
                & (lengths >= spec.lengths[0])
                & (lengths <= spec.lengths[-1])
                & (counts_f >= spec.counts[0])
                & (counts_f <= spec.counts[-1]))
    size_axis, length_axis, count_axis = model.axes()
    sane = interpolate_trilinear(
        model.artifact.interp_table("valid"), size_axis, length_axis,
        count_axis, log_sizes, log_lengths, counts_f) == 1.0
    return in_range & sane


def evaluate_line_lut(
    model,
    length: np.ndarray,
    num_repeaters: np.ndarray,
    repeater_size: np.ndarray,
    input_slew: float,
    bus_width: int = 1,
    receiver_cap: "float | None" = None,
) -> LineBatch:
    """LUT-served :func:`repro.kernels.line.evaluate_line_batch`.

    Delay and output slew interpolate from the artifact; dynamic and
    leakage power, and both areas, use the exact closed forms (so
    power and area are exact on *every* lane).  Serving is per lane:
    lanes outside the grid, or inside a cell with an invalid corner,
    get their timing from the closed-form kernel on ``model.base``
    instead (counted under ``luts.fallback``); an explicit
    ``receiver_cap`` or a different input slew falls the whole batch
    back.
    """
    lengths, counts, sizes = np.broadcast_arrays(
        np.atleast_1d(np.asarray(length, dtype=float)),
        np.atleast_1d(np.asarray(num_repeaters)),
        np.atleast_1d(np.asarray(repeater_size, dtype=float)),
    )
    counts = counts.astype(int)
    artifact = model.artifact
    spec = artifact.spec
    counts_f = counts.astype(float)
    if receiver_cap is not None or input_slew != spec.input_slew:
        from repro.kernels.line import evaluate_line_batch
        METRICS.count("luts.fallback")
        return evaluate_line_batch(
            model.base, length, num_repeaters, repeater_size,
            input_slew, bus_width=bus_width,
            receiver_cap=receiver_cap)
    log_sizes = np.log(sizes)
    log_lengths = np.log(lengths)
    served = _served_lanes(model, sizes, lengths, counts_f,
                           log_sizes, log_lengths)
    if not served.any():
        from repro.kernels.line import evaluate_line_batch
        METRICS.count("luts.fallback", int(served.size))
        return evaluate_line_batch(
            model.base, length, num_repeaters, repeater_size,
            input_slew, bus_width=bus_width)

    lanes = lengths.size
    METRICS.count("luts.lookups", int(served.sum()))
    with span("kernels.lut_batch", lanes=lanes), \
            METRICS.observed("lut.lookup_seconds"):
        size_axis, length_axis, count_axis = model.axes()
        delay = np.exp(interpolate_trilinear(
            artifact.interp_table("delay"), size_axis, length_axis,
            count_axis, log_sizes, log_lengths, counts_f))
        slew = np.exp(interpolate_trilinear(
            artifact.interp_table("output_slew"), size_axis,
            length_axis, count_axis, log_sizes, log_lengths,
            counts_f))

        tech = model.tech
        calibration = model.calibration
        coeffs = kwire.WireCoefficients.from_config(model.config)
        input_cap = krepeater.input_capacitance(tech, calibration,
                                                sizes)
        wn, wp = krepeater.inverter_widths(tech, sizes)
        switched = (kwire.switched_wire_capacitance(coeffs, lengths)
                    + counts * input_cap)
        p_dynamic = bus_width * (model.activity_factor * switched
                                 * tech.vdd * tech.vdd
                                 * tech.clock_frequency)
        e0n, e1n = calibration.leakage_n
        e0p, e1p = calibration.leakage_p
        p_sn = e0n + e1n * wn
        p_sp = e0p + e1p * wp
        p_leak = bus_width * counts * (0.5 * (p_sn + p_sp))
        f0, f1 = calibration.area
        a_repeaters = bus_width * counts * (f0 + f1 * wn)
        from repro.models.area import wire_area
        a_wire = wire_area(model.config, lengths, bus_width)

    if not served.all():
        from repro.kernels.line import evaluate_line_batch
        unserved = ~served
        METRICS.count("luts.fallback", int(unserved.sum()))
        fallback = evaluate_line_batch(
            model.base, lengths[unserved], counts[unserved],
            sizes[unserved], input_slew, bus_width=bus_width)
        delay[unserved] = fallback.delay
        slew[unserved] = fallback.output_slew

    return LineBatch(
        delay=delay,
        output_slew=slew,
        dynamic_power=p_dynamic,
        leakage_power=p_leak,
        repeater_area=a_repeaters,
        wire_area=a_wire,
        num_repeaters=counts,
        repeater_size=sizes,
        length=lengths,
    )


# -- search fast path -----------------------------------------------------


def _serves_search(model, length: float, counts, input_slew: float,
                   max_size: float) -> bool:
    """True when the cell-crossing search can serve this query.

    Requires the grid's size axis to start exactly at the search's
    lower bound (1.0) and end exactly at ``max_size`` so the search
    interval and the gridded region coincide.
    """
    if not serves_model(model):
        return False
    spec = model.artifact.spec
    count_list = list(counts)
    return (input_slew == spec.input_slew
            and spec.sizes[0] == 1.0
            and spec.sizes[-1] == max_size
            and spec.lengths[0] <= length <= spec.lengths[-1]
            and min(count_list) >= spec.counts[0]
            and max(count_list) <= spec.counts[-1])


def _delay_profile(model, length: float, counts: np.ndarray
                   ) -> np.ndarray:
    """Interpolated *log* delay over the full size axis, one column
    per count — bitwise what :func:`interpolate_trilinear` serves
    (before the final ``exp``) at the same ``(size, length, count)``
    points, mirroring its count-then-length reduction order."""
    artifact = model.artifact
    _, length_axis, count_axis = model.axes()
    j, fl = _bracket(length_axis, np.log(np.asarray([length])))
    j = int(j[0])
    fl = float(fl[0])
    k, fc = _bracket(count_axis, counts.astype(float))
    table = artifact.interp_table("delay")
    c0 = _lerp(table[:, j, k], table[:, j, k + 1], fc)
    c1 = _lerp(table[:, j + 1, k], table[:, j + 1, k + 1], fc)
    return _lerp(c0, c1, fl)


def _lane_powers(model, length: float, counts: np.ndarray,
                 sizes: np.ndarray, bus_width: int) -> np.ndarray:
    """Exact closed-form total power per (count, size) lane."""
    tech = model.tech
    calibration = model.calibration
    coeffs = kwire.WireCoefficients.from_config(model.config)
    input_cap = krepeater.input_capacitance(tech, calibration, sizes)
    wn, wp = krepeater.inverter_widths(tech, sizes)
    switched = (kwire.switched_wire_capacitance(coeffs, length)
                + counts * input_cap)
    p_dynamic = bus_width * (model.activity_factor * switched
                             * tech.vdd * tech.vdd
                             * tech.clock_frequency)
    e0n, e1n = calibration.leakage_n
    e0p, e1p = calibration.leakage_p
    p_sn = e0n + e1n * wn
    p_sp = e0p + e1p * wp
    p_leak = bus_width * counts * (0.5 * (p_sn + p_sp))
    return p_dynamic + p_leak


def _minimize_power_under_delay(
    model,
    length: float,
    max_delay: float,
    input_slew: float,
    max_size: float,
    bus_width: int,
    counts,
):
    """Min-power sizing on the interpolated surface, in closed form.

    Along the size axis the interpolated *log* delay is piecewise
    linear, so per count the minimum served delay is attained *at a
    grid node* and the smallest size meeting ``max_delay`` is a
    single cell crossing solved in log space — this solves what the
    scalar path bisects.  Mirrors the scalar semantics: counts whose
    fastest delay misses the bound are infeasible (grid points the
    validity mask pinned read as ``exp(0) = 1`` second, so degenerate
    corners are automatically infeasible rather than garbage), a
    count already meeting the bound at size 1 keeps size 1, and the
    minimum-power count wins.  Before committing, every candidate is
    re-served exactly as ``model.evaluate`` will serve it; a lane
    still over the bound after the ulp nudges is dropped.
    """
    from repro.buffering.optimizer import BufferingSolution

    count_array = np.asarray(list(counts), dtype=int)
    profile = _delay_profile(model, length, count_array)
    log_size_axis, _, _ = model.axes()
    log_max_delay = float(np.log(max_delay))

    feasible = profile.min(axis=0) <= log_max_delay
    if not feasible.any():
        return None
    count_array = count_array[feasible]
    profile = profile[:, feasible]

    meets = profile <= log_max_delay
    first = meets.argmax(axis=0)
    lanes = np.arange(count_array.size)
    below = np.maximum(first - 1, 0)
    d_hi = profile[first, lanes]
    d_lo = profile[below, lanes]
    ls_hi = log_size_axis[first]
    ls_lo = log_size_axis[below]
    at_min = first == 0
    with np.errstate(divide="ignore", invalid="ignore"):
        frac = (log_max_delay - d_lo) / (d_hi - d_lo)
    frac = np.where(at_min, 0.0, frac)
    chosen = np.exp(np.where(at_min, log_size_axis[0],
                             _lerp(ls_lo, ls_hi, frac)))
    # The crossing is exact on the log profile, but the round trips
    # (exp of the chosen log size, the lookup's own re-log and final
    # exp) can each round the served delay a few ulps past the bound;
    # nudge the size upward until the *actual* lookup pipeline —
    # re-bracket log(chosen), lerp, exp — agrees.  One ulp of the size
    # can be below the log's resolution, so the nudge escalates
    # (1, 2, 4, ... ulps) — total inflation stays under 1e-13 relative.
    eps = float(np.finfo(float).eps)
    served = np.empty(chosen.shape)
    for attempt in range(8):
        log_chosen = np.log(chosen)
        idx = np.searchsorted(log_size_axis, log_chosen,
                              side="right") - 1
        idx = np.clip(idx, 0, log_size_axis.size - 2)
        cell = log_size_axis[idx + 1] - log_size_axis[idx]
        check_frac = np.clip((log_chosen - log_size_axis[idx]) / cell,
                             0.0, 1.0)
        served = np.exp(_lerp(profile[idx, lanes],
                              profile[idx + 1, lanes], check_frac))
        over = served > max_delay
        if not over.any():
            break
        chosen = np.where(over, chosen * (1.0 + eps * 2.0**attempt),
                          chosen)

    powers = _lane_powers(model, length, count_array, chosen,
                          bus_width)
    powers = np.where(served > max_delay, np.inf, powers)
    if not np.isfinite(powers).any():
        return None
    index = int(np.argmin(powers))
    count = int(count_array[index])
    size = float(chosen[index])
    estimate = model.evaluate(length, count, size, input_slew,
                              bus_width=bus_width)
    return BufferingSolution(count, size, estimate,
                             estimate.total_power)


_UNUSED = (Optional,)     # typing re-export kept for annotations
