"""Broadcast forms of the three repeater equations (Section III-A).

Every function here mirrors one method of
:class:`repro.models.repeater.RepeaterModel` /
:class:`repro.models.calibration.DirectionCoefficients` with the same
operation order, but accepts NumPy arrays (or scalars) for the
size/slew/load arguments and broadcasts.  The scalar methods remain
the golden reference; the equivalence tests pin these to them.

Arguments follow the scalar conventions: slews and delays in seconds,
widths in meters, capacitance in farads.  ``wr`` is the pMOS width for
rising output transitions and the nMOS width for falling ones.
"""

from __future__ import annotations

import numpy as np

from repro.characterization.cells import BUFFER_STAGE_RATIO, RepeaterKind
from repro.models.calibration import (
    CalibratedTechnology,
    DirectionCoefficients,
    OutputSlewForm,
)
from repro.tech.parameters import TechnologyParameters


def inverter_widths(tech: TechnologyParameters,
                    sizes: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """(wn, wp) arrays in meters for an array of drive strengths."""
    wn = tech.min_nmos_width * sizes
    return wn, wn * tech.pn_ratio


def transition_widths(tech: TechnologyParameters, sizes: np.ndarray,
                      rising_output: bool) -> np.ndarray:
    """The model's ``w_r`` in meters: pMOS width for rise, nMOS for
    fall."""
    wn, wp = inverter_widths(tech, sizes)
    return wp if rising_output else wn


def input_capacitance(tech: TechnologyParameters,
                      calibration: CalibratedTechnology,
                      sizes: np.ndarray) -> np.ndarray:
    """Input capacitance ``gamma * (wp + wn)`` in farads, per lane."""
    if calibration.kind is RepeaterKind.BUFFER:
        first_size = np.maximum(sizes / BUFFER_STAGE_RATIO, 1.0)
        wn, wp = inverter_widths(tech, first_size)
    else:
        wn, wp = inverter_widths(tech, sizes)
    return calibration.input_cap_gamma * (wn + wp)


def intrinsic_delay(direction: DirectionCoefficients,
                    input_slew: np.ndarray) -> np.ndarray:
    """Intrinsic delay ``a0 + a1 s_i + a2 s_i^2`` in seconds."""
    a0, a1, a2 = direction.intrinsic
    return a0 + a1 * input_slew + a2 * input_slew * input_slew


def drive_resistance(direction: DirectionCoefficients,
                     input_slew: np.ndarray,
                     wr: np.ndarray) -> np.ndarray:
    """Drive resistance ``(b0 + b1 s_i) / w_r`` in ohms."""
    b0, b1 = direction.drive
    return (b0 + b1 * input_slew) / wr


def output_slew(direction: DirectionCoefficients, load_cap: np.ndarray,
                input_slew: np.ndarray, wr: np.ndarray) -> np.ndarray:
    """Output slew in seconds (both published and size-scaled forms)."""
    c0, c1, c2 = direction.slew
    if direction.slew_form is OutputSlewForm.PAPER:
        return c0 + c1 * input_slew / wr + c2 * load_cap
    return c0 + c1 * input_slew / wr + c2 * load_cap / wr


def delay(direction: DirectionCoefficients, input_slew: np.ndarray,
          wr: np.ndarray, load_cap: np.ndarray) -> np.ndarray:
    """Repeater delay ``d_r = i(s_i) + r_d(s_i, w_r) c_l`` in seconds."""
    return (intrinsic_delay(direction, input_slew)
            + drive_resistance(direction, input_slew, wr) * load_cap)
