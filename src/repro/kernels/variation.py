"""Batched Monte-Carlo line delay over a perturbation-factor matrix.

:func:`line_delay_batch` evaluates one fixed line geometry under many
within-die variation draws at once: the caller draws every
perturbation factor with its own ``SeedSequence`` streams (preserving
the bit-identical sample-vector contract) and hands the whole factor
matrix here, where each Monte-Carlo sample becomes one lane.

Variation enters the closed-form model through the alpha-power law:
a drive-strength factor scales the device width directly (drive
current is linear in width) and a threshold-voltage factor scales the
gate overdrive, so the effective transition width is

    ``w_eff = (w * drive) * ((vdd - vth*f_vth) / (vdd - vth))**alpha``

with the overdrive floored at ``0.05 * vdd``.  The scalar reference
for this mapping is ``repro.signoff.variation._effective_width``; the
equivalence tests pin the two together.

Kernels draw no random numbers — ``repro lint`` enforces it.
"""

from __future__ import annotations

import numpy as np

from repro.kernels import repeater as krepeater
from repro.kernels import wire as kwire
from repro.models.interconnect import BufferedInterconnectModel
from repro.runtime.metrics import METRICS
from repro.runtime.trace import span

#: Factor-matrix column order, matching the per-stage draw order of the
#: scalar sampler: nMOS drive, nMOS vth, pMOS drive, pMOS vth.
N_DRIVE, N_VTH, P_DRIVE, P_VTH = range(4)

#: Minimum gate overdrive as a fraction of vdd (keeps pathological vth
#: draws from driving the overdrive to zero or negative).
OVERDRIVE_FLOOR = 0.05


def effective_widths(device, width: float, vdd: float,
                     drive_factors: np.ndarray,
                     vth_factors: np.ndarray) -> np.ndarray:
    """Effective transition widths (m) under perturbation, per lane."""
    overdrive = np.maximum(vdd - device.vth * vth_factors,
                           OVERDRIVE_FLOOR * vdd)
    nominal_overdrive = vdd - device.vth
    return (width * drive_factors
            * (overdrive / nominal_overdrive) ** device.alpha)


def clip_factor_matrix(factors: np.ndarray) -> np.ndarray:
    """Clip a ``(samples, stages, 4)`` factor matrix to physical
    values, in place: drive factors floored at 0.5, vth factors into
    [0.5, 1.5] — the batched mirror of the scalar sampler's per-draw
    clips (``_clip_drive`` / ``_clip_vth``).  Returns ``factors``.
    """
    factors[:, :, 0::2] = np.maximum(factors[:, :, 0::2], 0.5)
    factors[:, :, 1::2] = np.clip(factors[:, :, 1::2], 0.5, 1.5)
    return factors


def line_delay_batch(
    model: BufferedInterconnectModel,
    length: float,
    num_repeaters: int,
    repeater_size: float,
    receiver_cap: float,
    input_slew: float,
    factors: np.ndarray,
) -> np.ndarray:
    """Line delay (s) per Monte-Carlo sample, one kernel call.

    ``factors`` has shape ``(samples, num_repeaters, 4)`` with columns
    ``(n_drive, n_vth, p_drive, p_vth)`` — the multiplicative
    perturbations of each stage, in the scalar sampler's draw order.
    A row of ones is the nominal line.
    """
    factors = np.asarray(factors, dtype=float)
    if factors.ndim != 3 or factors.shape[1:] != (num_repeaters, 4):
        raise ValueError(
            f"factors must have shape (samples, {num_repeaters}, 4), "
            f"got {factors.shape}")
    lanes = factors.shape[0]
    METRICS.count("kernels.batches")
    METRICS.count("kernels.batch_size", lanes)
    with span("kernels.variation_batch", lanes=lanes,
              stages=num_repeaters), METRICS.timer("kernels.batch"):
        tech = model.tech
        calibration = model.calibration
        coeffs = kwire.WireCoefficients.from_config(model.config)
        segment = length / num_repeaters
        repeater = model.repeater_model()
        input_cap = repeater.input_capacitance(repeater_size)
        wn, wp = tech.inverter_widths(repeater_size)

        total = np.zeros(lanes)
        slew = np.full(lanes, float(input_slew))
        rising = True
        inverting = calibration.kind.inverting
        for stage in range(num_repeaters):
            next_cap = (input_cap if stage + 1 < num_repeaters
                        else receiver_cap)
            load = float(kwire.effective_load_capacitance(
                coeffs, segment, next_cap))
            d_wire = float(kwire.wire_delay(coeffs, segment, next_cap))
            direction = calibration.direction(rising)
            if rising:
                device, width = tech.pmos, wp
                drive = factors[:, stage, P_DRIVE]
                vthf = factors[:, stage, P_VTH]
            else:
                device, width = tech.nmos, wn
                drive = factors[:, stage, N_DRIVE]
                vthf = factors[:, stage, N_VTH]
            wr = effective_widths(device, width, tech.vdd, drive, vthf)
            d_repeater = krepeater.delay(direction, slew, wr, load)
            slew = krepeater.output_slew(direction, load, slew, wr)
            total = total + (d_repeater + d_wire)
            if inverting:
                rising = not rising
        return total
