"""Lockstep batched buffering searches (Section III-D, vectorized).

The scalar optimizer runs one golden-section (or bisection) search per
repeater count, each a chain of ~40 dependent scalar evaluations.
These kernels run *all counts as lanes of one search*: every iteration
issues a single :func:`~repro.kernels.line.evaluate_line_batch` call
at the per-lane probe points, with per-lane ``open`` masks freezing
lanes whose interval has already converged.

The update sequence mirrors :mod:`repro.buffering.optimizer`
operation-for-operation — same interval arithmetic, same ``f1 <= f2``
tie-breaking, same convergence test — so each lane follows the exact
trajectory the scalar search would, and the argmin over lanes
reproduces the scalar strict-``<`` first-minimum over counts.  The
winning lane's estimate is rebuilt with one scalar
``model.evaluate`` call, so the returned
:class:`~repro.buffering.optimizer.BufferingSolution` is bitwise
identical to the scalar optimizer's (for the pure delay/power
objectives; the fractional weighted product may differ by one ulp of
``pow``).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.buffering.optimizer import BufferingSolution
from repro.kernels.line import evaluate_line_batch

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


def _objective(delays: np.ndarray, powers: np.ndarray,
               delay_weight: float) -> np.ndarray:
    """Array form of ``_weighted_objective``."""
    if delay_weight >= 1.0:
        return delays
    if delay_weight <= 0.0:
        return powers
    return (delays**delay_weight * powers**(1.0 - delay_weight))


def _evaluate(model, length: float, counts: np.ndarray,
              sizes: np.ndarray, input_slew: float, bus_width: int
              ) -> "tuple[np.ndarray, np.ndarray]":
    """(delay, total_power) arrays at one probe point per lane."""
    batch = evaluate_line_batch(model, length, counts, sizes,
                                input_slew, bus_width=bus_width)
    return batch.delay, batch.total_power


def _best_sizes_for_counts(model, length: float, counts: np.ndarray,
                           input_slew: float, delay_weight: float,
                           max_size: float, bus_width: int
                           ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Golden-section over size, all counts in lockstep.

    Returns (sizes, objectives, delays) per lane, matching what
    ``_best_size_for_count`` would return for each count.
    """
    n = counts.size
    low = np.full(n, 1.0)
    high = np.full(n, max_size)
    x1 = high - _GOLDEN * (high - low)
    x2 = low + _GOLDEN * (high - low)
    d1, p1 = _evaluate(model, length, counts, x1, input_slew, bus_width)
    d2, p2 = _evaluate(model, length, counts, x2, input_slew, bus_width)
    f1 = _objective(d1, p1, delay_weight)
    f2 = _objective(d2, p2, delay_weight)
    for _ in range(40):
        open_ = (high - low) >= 0.25
        if not open_.any():
            break
        take = f1 <= f2
        shift = open_ & take
        other = open_ & ~take
        # take lanes: high <- x2, x2 <- x1, probe becomes the new x1;
        # else lanes: low <- x1, x1 <- x2, probe becomes the new x2.
        new_high = np.where(shift, x2, high)
        new_low = np.where(other, x1, low)
        kept_x2 = np.where(shift, x1, x2)
        kept_f2 = np.where(shift, f1, f2)
        kept_d2 = np.where(shift, d1, d2)
        kept_x1 = np.where(other, x2, x1)
        kept_f1 = np.where(other, f2, f1)
        kept_d1 = np.where(other, d2, d1)
        probe_take = new_high - _GOLDEN * (new_high - new_low)
        probe_else = new_low + _GOLDEN * (new_high - new_low)
        probe = np.where(take, probe_take, probe_else)
        dp, pp = _evaluate(model, length, counts, probe, input_slew,
                           bus_width)
        fp = _objective(dp, pp, delay_weight)
        x1 = np.where(shift, probe, kept_x1)
        f1 = np.where(shift, fp, kept_f1)
        d1 = np.where(shift, dp, kept_d1)
        x2 = np.where(other, probe, kept_x2)
        f2 = np.where(other, fp, kept_f2)
        d2 = np.where(other, dp, kept_d2)
        low, high = new_low, new_high
    final_take = f1 <= f2
    sizes = np.where(final_take, x1, x2)
    objectives = np.where(final_take, f1, f2)
    delays = np.where(final_take, d1, d2)
    return sizes, objectives, delays


def optimize_buffering_batch(
    model,
    length: float,
    counts: Sequence[int],
    delay_weight: float,
    input_slew: float,
    max_size: float,
    bus_width: int,
) -> BufferingSolution:
    """Batched equivalent of ``optimize_buffering`` over given counts."""
    count_array = np.asarray(list(counts), dtype=int)
    sizes, objectives, _ = _best_sizes_for_counts(
        model, length, count_array, input_slew, delay_weight, max_size,
        bus_width)
    index = int(np.argmin(objectives))
    count = int(count_array[index])
    size = float(sizes[index])
    estimate = model.evaluate(length, count, size, input_slew,
                              bus_width=bus_width)
    return BufferingSolution(count, size, estimate,
                             float(objectives[index]))


def minimize_power_under_delay_batch(
    model,
    length: float,
    max_delay: float,
    input_slew: float,
    max_size: float,
    bus_width: int,
    counts: Sequence[int],
) -> Optional[BufferingSolution]:
    """Batched equivalent of ``minimize_power_under_delay``.

    LUT-served models whose artifact grid spans the whole search
    interval skip the bisection entirely: the smallest size meeting
    the bound is a closed-form cell crossing on the interpolated
    surface (see :mod:`repro.kernels.lut`).  Everything else — plain
    models, or LUT queries outside the gridded region — runs the
    lockstep bisection below, whose probes still serve from the
    tables lane-by-lane where they can.
    """
    from repro.kernels import lut as klut

    count_list = list(counts)
    if klut._serves_search(model, length, count_list, input_slew,
                           max_size):
        return klut._minimize_power_under_delay(
            model, length, max_delay, input_slew, max_size,
            bus_width, count_list)
    count_array = np.asarray(count_list, dtype=int)
    fastest_sizes, fastest_delays, _ = _best_sizes_for_counts(
        model, length, count_array, input_slew, 1.0, max_size, bus_width)
    feasible = fastest_delays <= max_delay
    if not feasible.any():
        return None
    count_array = count_array[feasible]
    fastest_sizes = fastest_sizes[feasible]

    n = count_array.size
    low = np.full(n, 1.0)
    high = fastest_sizes.copy()
    low_delay, _ = _evaluate(model, length, count_array, low, input_slew,
                             bus_width)
    at_min = low_delay <= max_delay
    for _ in range(40):
        open_ = ~at_min & ((high - low) >= 0.25)
        if not open_.any():
            break
        mid = 0.5 * (low + high)
        delay, _ = _evaluate(model, length, count_array, mid, input_slew,
                             bus_width)
        meets = delay <= max_delay
        high = np.where(open_ & meets, mid, high)
        low = np.where(open_ & ~meets, mid, low)
    # at_min lanes never open, so their ``low`` is still the initial
    # minimum size — reusing it mirrors the scalar's ``chosen = low``.
    chosen = np.where(at_min, low, high)
    _, powers = _evaluate(model, length, count_array, chosen, input_slew,
                          bus_width)
    index = int(np.argmin(powers))
    count = int(count_array[index])
    size = float(chosen[index])
    estimate = model.evaluate(length, count, size, input_slew,
                              bus_width=bus_width)
    return BufferingSolution(count, size, estimate,
                             estimate.total_power)
