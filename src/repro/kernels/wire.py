"""Broadcast forms of the enhanced Pamunuwa wire terms (Section III-B).

The scalar :mod:`repro.models.wire` recomputes the per-meter
resistance and capacitances on *every* call — those come from the
resistivity/field models and dominate the cost of a scalar stage
evaluation.  A batch, by contrast, shares one wire configuration
across all lanes, so :class:`WireCoefficients` hoists the per-meter
values once and the per-lane work reduces to a handful of fused
multiplies.  The expressions mirror the scalar ones
operation-for-operation so results agree to ULP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.wire import LOAD_COEFFICIENT, WIRE_CAP_COEFFICIENT
from repro.tech.design_styles import WireConfiguration


@dataclass(frozen=True)
class WireCoefficients:
    """Per-meter parasitics of one wire configuration, hoisted once.

    Units: ohm/m, F/m; ``delay_miller`` dimensionless.
    """

    resistance_per_meter: float
    ground_cap_per_meter: float
    coupling_cap_per_meter: float
    switched_cap_per_meter: float
    delay_miller: float

    @classmethod
    def from_config(cls, config: WireConfiguration) -> "WireCoefficients":
        return cls(
            resistance_per_meter=config.resistance_per_meter(),
            ground_cap_per_meter=config.ground_capacitance_per_meter(),
            coupling_cap_per_meter=config.coupling_capacitance_per_meter(),
            switched_cap_per_meter=config.switched_capacitance_per_meter(),
            delay_miller=config.delay_miller,
        )


def wire_delay(coefficients: WireCoefficients, lengths: np.ndarray,
               load_cap: np.ndarray) -> np.ndarray:
    """Total wire delay ``d_w`` per lane, in seconds."""
    r_wire = coefficients.resistance_per_meter * lengths
    c_ground = coefficients.ground_cap_per_meter * lengths
    c_coupling = coefficients.coupling_cap_per_meter * lengths
    ground_term = r_wire * WIRE_CAP_COEFFICIENT * c_ground
    coupling_term = (r_wire * WIRE_CAP_COEFFICIENT
                     * coefficients.delay_miller * c_coupling)
    load_term = r_wire * LOAD_COEFFICIENT * load_cap
    return ground_term + coupling_term + load_term


def effective_load_capacitance(coefficients: WireCoefficients,
                               lengths: np.ndarray,
                               next_input_cap: np.ndarray) -> np.ndarray:
    """Load capacitance ``c_l`` presented to the driver, per lane."""
    c_ground = coefficients.ground_cap_per_meter * lengths
    c_coupling = coefficients.coupling_cap_per_meter * lengths
    return (c_ground + coefficients.delay_miller * c_coupling
            + next_input_cap)


def switched_wire_capacitance(coefficients: WireCoefficients,
                              lengths: np.ndarray) -> np.ndarray:
    """Capacitance (F) charged by the driver per transition, per lane."""
    return coefficients.switched_cap_per_meter * lengths
