"""The scalar↔batch parity registry (`kernel-parity` lint rule).

Every batched kernel in :mod:`repro.kernels` mirrors a scalar model
path operation-for-operation — that is what makes the ≤1e-9
equivalence contract hold and lets the runtime swap engines freely.
This registry declares each pairing in machine-readable form so the
whole-program lint pass (:mod:`repro.analysis.checkers.kernel_parity`)
can compare both sides' arithmetic-operation multisets and numeric
constants on every run and flag drift *before* the statistical suites
notice it.

Each :class:`ParityPair` lists one or more functions per side (a
kernel often inlines what the scalar path splits across helpers — the
multisets of a side are merged before comparison), identified by
module-qualified name.  ``compare`` selects the contract:

``"exact"``
    Operation multisets *and* numeric-constant multisets must match.
``"ops"``
    Operation multisets only — used where the kernel deliberately
    hoists constant-bearing work to its caller (e.g. the Monte-Carlo
    factor draws), with the hoist justified in ``rationale``.

Functions in :data:`EXEMPT` are public kernel-module functions that
are orchestration or predicates rather than batch mirrors; the
checker requires every *other* public kernel function to appear in a
pair, so adding a kernel without registering it is itself a finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple


@dataclass(frozen=True)
class ParityPair:
    """One scalar↔batch pairing, by module-qualified function names."""

    name: str
    kernel: Tuple[str, ...]
    scalar: Tuple[str, ...]
    compare: str = "exact"      # "exact" | "ops"
    rationale: str = ""


PARITY_PAIRS: Tuple[ParityPair, ...] = (
    # -- repeater stage model (Section III-A) --------------------------
    ParityPair(
        name="inverter-widths",
        kernel=("repro.kernels.repeater.inverter_widths",),
        scalar=("repro.tech.parameters.TechnologyParameters"
                ".inverter_widths",),
    ),
    ParityPair(
        name="transition-widths",
        kernel=("repro.kernels.repeater.transition_widths",),
        scalar=("repro.models.repeater.RepeaterModel.transition_width",),
    ),
    ParityPair(
        name="input-capacitance",
        kernel=("repro.kernels.repeater.input_capacitance",),
        scalar=("repro.models.repeater.RepeaterModel"
                ".input_capacitance",),
    ),
    ParityPair(
        name="intrinsic-delay",
        kernel=("repro.kernels.repeater.intrinsic_delay",),
        scalar=("repro.models.calibration.DirectionCoefficients"
                ".intrinsic_delay",),
    ),
    ParityPair(
        name="drive-resistance",
        kernel=("repro.kernels.repeater.drive_resistance",),
        scalar=("repro.models.calibration.DirectionCoefficients"
                ".drive_resistance",),
    ),
    ParityPair(
        name="output-slew",
        kernel=("repro.kernels.repeater.output_slew",),
        scalar=("repro.models.calibration.DirectionCoefficients"
                ".output_slew",),
    ),
    ParityPair(
        name="repeater-delay",
        kernel=("repro.kernels.repeater.delay",),
        scalar=("repro.models.calibration.DirectionCoefficients"
                ".delay",),
    ),
    # -- wire model (Section III-B) ------------------------------------
    ParityPair(
        name="wire-delay",
        kernel=("repro.kernels.wire.wire_delay",),
        # The scalar path splits the distributed-RC delay into its
        # component terms plus a summing property.
        scalar=("repro.models.wire.wire_delay_components",
                "repro.models.wire.WireDelayComponents.total"),
    ),
    ParityPair(
        name="effective-load-capacitance",
        kernel=("repro.kernels.wire.effective_load_capacitance",),
        scalar=("repro.models.wire.effective_load_capacitance",),
    ),
    ParityPair(
        name="switched-wire-capacitance",
        kernel=("repro.kernels.wire.switched_wire_capacitance",),
        scalar=("repro.models.wire.switched_wire_capacitance",),
    ),
    # -- composed line evaluation --------------------------------------
    ParityPair(
        name="line-evaluate",
        kernel=("repro.kernels.line.evaluate_line_batch",),
        # The kernel inlines the power/area arithmetic the scalar
        # path spreads over its helpers; wire_area is *called* by
        # both sides, so it appears on neither.
        scalar=("repro.models.interconnect.BufferedInterconnectModel"
                ".evaluate",
                "repro.models.interconnect.BufferedInterconnectModel"
                ".stage_delay",
                "repro.models.power.dynamic_power",
                "repro.models.power.leakage_power_from_coefficients",
                "repro.models.area.regression_repeater_area"),
    ),
    # -- process variation (Section IV) --------------------------------
    ParityPair(
        name="effective-widths",
        kernel=("repro.kernels.variation.effective_widths",),
        scalar=("repro.signoff.variation._effective_width",),
    ),
    ParityPair(
        name="clip-factors",
        kernel=("repro.kernels.variation.clip_factor_matrix",),
        scalar=("repro.signoff.variation._clip_drive",
                "repro.signoff.variation._clip_vth"),
    ),
    ParityPair(
        name="line-delay-mc",
        kernel=("repro.kernels.variation.line_delay_batch",),
        scalar=("repro.signoff.variation._model_sample_line_delay",),
        compare="ops",
        rationale=(
            "the scalar sampler draws its four per-stage factors "
            "(rng.normal(1.0, sigma)) inline while the kernel takes "
            "a precomputed factor matrix, so the draw constants live "
            "in the caller on the batched side"),
    ),
    # -- buffering search (Section III-D) ------------------------------
    ParityPair(
        name="search-objective",
        kernel=("repro.kernels.search._objective",),
        scalar=("repro.buffering.optimizer._weighted_objective",),
    ),
    ParityPair(
        name="search-golden-section",
        kernel=("repro.kernels.search._best_sizes_for_counts",),
        scalar=("repro.buffering.optimizer._best_size_for_count",),
    ),
    ParityPair(
        name="search-power-under-delay",
        kernel=("repro.kernels.search.minimize_power_under_delay_batch",),
        scalar=("repro.buffering.optimizer"
                ".minimize_power_under_delay",),
    ),
    # -- characterization LUT tier -------------------------------------
    ParityPair(
        name="lut-trilinear",
        kernel=("repro.kernels.lut.interpolate_trilinear",
                "repro.kernels.lut._bracket",
                "repro.kernels.lut._lerp"),
        scalar=("repro.luts.interp.trilinear",
                "repro.luts.interp.bracket",
                "repro.luts.interp._lerp"),
        compare="ops",
        rationale=(
            "same bracketing and lerp arithmetic, but the scalar "
            "bracket spells its clamps as min/max over bisect_right "
            "while the batched one uses searchsorted + numpy.clip, "
            "so the clamp constants sit in different positions"),
    ),
    ParityPair(
        name="lut-first-order",
        kernel=("repro.kernels.lut.line_delay_first_order",),
        scalar=("repro.luts.model.first_order_line_delay",),
        compare="ops",
        rationale=(
            "the scalar mirror accumulates per-stage terms with "
            "math.fsum over a generator while the kernel reduces "
            "with ndarray.sum; neither reduction appears in the op "
            "multiset, but the loop bookkeeping constants differ"),
    ),
    ParityPair(
        name="lut-line-evaluate",
        kernel=("repro.kernels.lut.evaluate_line_lut",),
        # The LUT lane interpolates timing (log lookup + exp) and
        # inlines the exact power/area closed forms the scalar model
        # spreads across its helpers, exactly as line-evaluate does.
        scalar=("repro.luts.model.LUTInterconnectModel"
                "._lookup_estimate",
                "repro.models.power.dynamic_power",
                "repro.models.power.leakage_power_from_coefficients",
                "repro.models.area.regression_repeater_area"),
        compare="ops",
        rationale=(
            "the batched lane carries the per-lane fallback and "
            "serving-mask orchestration (broadcasts, mask counts) "
            "that the scalar path expresses as control flow in "
            "LUTInterconnectModel.evaluate, so constants differ "
            "while the served arithmetic matches op-for-op"),
    ),
)

#: Public kernel-module functions that are not batch mirrors: pure
#: predicates and lockstep orchestration whose arithmetic lives in
#: already-paired helpers.
EXEMPT: FrozenSet[str] = frozenset({
    # type predicate, no arithmetic to mirror
    "repro.kernels.line.supports_model",
    # type predicate, no arithmetic to mirror
    "repro.kernels.lut.serves_model",
    # argmin + scalar rebuild; the searched arithmetic is paired via
    # search-golden-section / search-objective
    "repro.kernels.search.optimize_buffering_batch",
})
