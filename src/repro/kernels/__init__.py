"""Vectorized NumPy kernels for the closed-form models.

The scalar models in :mod:`repro.models` are the golden reference:
one Python call per repeater equation, readable and individually
testable.  The hot paths, however, evaluate those formulas thousands
of times with different arguments — Monte-Carlo variation draws,
repeater-count x size candidate grids, length sweeps.  This package
re-expresses the same closed forms as NumPy broadcasting over lanes,
so one ufunc-style call replaces thousands of scalar invocations:

* :mod:`repro.kernels.repeater` — the three repeater equations
  (delay, output slew, input capacitance) over arrays;
* :mod:`repro.kernels.wire` — the enhanced Pamunuwa wire RC/delay
  terms with the expensive per-meter parasitics hoisted out of the
  inner loop (:class:`~repro.kernels.wire.WireCoefficients`);
* :mod:`repro.kernels.line` — the composed buffered-line delay/power
  over ``(count, size, length)`` lanes
  (:func:`~repro.kernels.line.evaluate_line_batch`);
* :mod:`repro.kernels.search` — lockstep golden-section / bisection
  searches over all repeater-count lanes at once, reproducing the
  scalar optimizer's trajectory decision-for-decision;
* :mod:`repro.kernels.variation` — perturbed line delay over a whole
  Monte-Carlo factor matrix in one call;
* :mod:`repro.kernels.lut` — batched trilinear interpolation over the
  characterization LUT tier (:mod:`repro.luts`), plus the first-order
  Monte-Carlo lane and the LUT-served line evaluation.

Contracts:

* **Equivalence** — every kernel mirrors the scalar expressions
  operation-for-operation (same association order, sequential
  accumulation instead of ``np.sum``), so results match the scalar
  path elementwise to within a few ULP; the test suite asserts a
  1e-9 relative bound.
* **No RNG** — kernels are pure array transforms.  All random draws
  happen in the caller (which owns the ``SeedSequence`` streams) and
  arrive as arrays; ``repro lint`` enforces this.
* **Observability** — batch entry points record the
  ``kernels.batches`` / ``kernels.batch_size`` counters and the
  ``kernels.batch`` timer, from which the ``--stats`` footer derives
  ``kernels.throughput``, and open ``trace.span`` spans.
"""

from __future__ import annotations

from repro.kernels.line import LineBatch, evaluate_line_batch, \
    supports_model
from repro.kernels.lut import (
    evaluate_line_lut,
    interpolate_trilinear,
    line_delay_first_order,
    serves_model,
)
from repro.kernels.search import (
    minimize_power_under_delay_batch,
    optimize_buffering_batch,
)
from repro.kernels.variation import line_delay_batch
from repro.kernels.wire import WireCoefficients

__all__ = [
    "LineBatch",
    "WireCoefficients",
    "evaluate_line_batch",
    "evaluate_line_lut",
    "interpolate_trilinear",
    "line_delay_first_order",
    "line_delay_batch",
    "minimize_power_under_delay_batch",
    "optimize_buffering_batch",
    "serves_model",
    "supports_model",
]
