"""Batched buffered-line evaluation (the composed proposed model).

:func:`evaluate_line_batch` is the array form of
:meth:`repro.models.interconnect.BufferedInterconnectModel.evaluate`:
it evaluates many ``(length, num_repeaters, repeater_size)`` lanes in
one call.  Lanes may have different repeater counts; the stage loop
runs to the largest count with per-lane ``active`` masks so every lane
accumulates exactly the stages the scalar loop would have.

The slew chain is inherently sequential (stage ``k+1`` consumes stage
``k``'s output slew), so the loop over *stages* stays in Python — the
win is that each iteration evaluates *all lanes* at once, and the
expensive per-meter wire parasitics are hoisted once per batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels import repeater as krepeater
from repro.kernels import wire as kwire
from repro.models.area import wire_area
from repro.models.interconnect import BufferedInterconnectModel
from repro.runtime.metrics import METRICS
from repro.runtime.trace import span


def supports_model(model: object) -> bool:
    """True when ``model`` can be evaluated by the kernels.

    Subclasses may override ``stage_delay``/``evaluate`` (e.g. the
    slew-aware sign-off variant), which the kernels would silently
    ignore — so the check is an exact type match, not ``isinstance``.
    """
    return type(model) is BufferedInterconnectModel


@dataclass(frozen=True)
class LineBatch:
    """Array-of-structs result of one batched line evaluation.

    Field meanings match
    :class:`repro.models.interconnect.InterconnectEstimate`; every
    field is an array over the broadcast lanes (``stage_delays`` is
    omitted — per-stage breakdowns stay a scalar-path feature).
    """

    delay: np.ndarray
    output_slew: np.ndarray
    dynamic_power: np.ndarray
    leakage_power: np.ndarray
    repeater_area: np.ndarray
    wire_area: np.ndarray
    num_repeaters: np.ndarray
    repeater_size: np.ndarray
    length: np.ndarray

    @property
    def total_power(self) -> np.ndarray:
        """Dynamic plus leakage power per lane, in watts."""
        return self.dynamic_power + self.leakage_power


def evaluate_line_batch(
    model: BufferedInterconnectModel,
    length: np.ndarray,
    num_repeaters: np.ndarray,
    repeater_size: np.ndarray,
    input_slew: float,
    bus_width: int = 1,
    receiver_cap: "float | None" = None,
) -> LineBatch:
    """Evaluate uniformly buffered lines over broadcast lanes.

    ``length`` in meters, ``num_repeaters`` integral, ``repeater_size``
    the dimensionless drive multiple; scalars broadcast.
    ``receiver_cap`` defaults per lane to the lane's own repeater input
    capacitance, matching the scalar default.
    """
    if not supports_model(model):
        from repro.kernels import lut as klut
        if klut.serves_model(model):
            return klut.evaluate_line_lut(
                model, length, num_repeaters, repeater_size,
                input_slew, bus_width=bus_width,
                receiver_cap=receiver_cap)
        raise TypeError(
            "evaluate_line_batch mirrors the plain "
            "BufferedInterconnectModel stage arithmetic; got "
            f"{type(model).__name__}")
    lengths, counts, sizes = np.broadcast_arrays(
        np.atleast_1d(np.asarray(length, dtype=float)),
        np.atleast_1d(np.asarray(num_repeaters)),
        np.atleast_1d(np.asarray(repeater_size, dtype=float)),
    )
    if not np.all(lengths > 0):
        raise ValueError("length must be positive")
    if not np.all(counts >= 1):
        raise ValueError("need at least one repeater")
    if not np.all(sizes > 0):
        raise ValueError("size must be positive")
    counts = counts.astype(int)

    lanes = lengths.size
    METRICS.count("kernels.batches")
    METRICS.count("kernels.batch_size", lanes)
    with span("kernels.line_batch", lanes=lanes), \
            METRICS.timer("kernels.batch"):
        tech = model.tech
        calibration = model.calibration
        coeffs = kwire.WireCoefficients.from_config(model.config)

        segment = lengths / counts
        input_cap = krepeater.input_capacitance(tech, calibration, sizes)
        receiver = (input_cap if receiver_cap is None
                    else np.broadcast_to(float(receiver_cap),
                                         lengths.shape))
        wn, wp = krepeater.inverter_widths(tech, sizes)

        total_delay = np.zeros(lengths.shape)
        slew = np.broadcast_to(float(input_slew), lengths.shape).copy()
        rising = True
        inverting = calibration.kind.inverting
        max_count = int(counts.max())
        for stage in range(max_count):
            active = stage < counts
            direction = calibration.direction(rising)
            wr = wp if rising else wn
            next_cap = np.where(stage + 1 < counts, input_cap, receiver)
            load = kwire.effective_load_capacitance(
                coeffs, segment, next_cap)
            d_repeater = krepeater.delay(direction, slew, wr, load)
            d_wire = kwire.wire_delay(coeffs, segment, next_cap)
            slew_out = krepeater.output_slew(direction, load, slew, wr)
            total_delay = np.where(active,
                                   total_delay + (d_repeater + d_wire),
                                   total_delay)
            slew = np.where(active, slew_out, slew)
            if inverting:
                rising = not rising

        switched = (kwire.switched_wire_capacitance(coeffs, lengths)
                    + counts * input_cap)
        p_dynamic = bus_width * (model.activity_factor * switched
                                 * tech.vdd * tech.vdd
                                 * tech.clock_frequency)

        e0n, e1n = calibration.leakage_n
        e0p, e1p = calibration.leakage_p
        p_sn = e0n + e1n * wn
        p_sp = e0p + e1p * wp
        p_leak = bus_width * counts * (0.5 * (p_sn + p_sp))

        f0, f1 = calibration.area
        a_repeaters = bus_width * counts * (f0 + f1 * wn)
        a_wire = wire_area(model.config, lengths, bus_width)

        return LineBatch(
            delay=total_delay,
            output_slew=slew,
            dynamic_power=p_dynamic,
            leakage_power=p_leak,
            repeater_area=a_repeaters,
            wire_area=a_wire,
            num_repeaters=counts,
            repeater_size=sizes,
            length=lengths,
        )
