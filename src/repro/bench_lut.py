"""LUT-vs-closed-form benchmarks: the characterization tier's gate.

``repro bench lut`` builds a LUT artifact for the node, then times the
two hot paths the tier accelerates — the min-power link-design sweep
and the ``"model"``-engine Monte-Carlo — once against the closed-form
model (the production path without the tier) and once against the
LUT-served model, and writes ``BENCH_lut.json`` in the registry's
``op`` schema (``wall_s`` maps ``scalar`` to the closed form and
``kernel`` to the LUT).

The run gates on the tier's whole contract, not just speed:

* both speedups must clear :data:`SPEEDUP_FLOOR` (5x);
* the artifact's measured cell-midpoint interpolation error must be
  within its grid's contract (it is re-validated at build time, so a
  violation here means the builder itself regressed);
* every LUT-sweep design must meet the timing bound it was asked for;
* the LUT Monte-Carlo lane must return bit-identical samples at
  ``workers`` 1, 2 and 4 — lookups are pure table arithmetic, so any
  worker dependence is a determinism bug, not noise.

Timing runs at ``workers=1`` so the recorded speedup is algorithmic,
not parallelism.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.units import mm, ps

#: Bump when the BENCH_lut.json layout changes incompatibly.
BENCH_SCHEMA = 1

#: Minimum LUT-over-closed-form speedup on both benched paths.
SPEEDUP_FLOOR = 5.0

#: Monte-Carlo sample counts (full / --quick).
DEFAULT_SAMPLES = 4_000
QUICK_SAMPLES = 800

#: Link-sweep lengths in millimeters (full / --quick).
SWEEP_LENGTHS_MM = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0)
QUICK_SWEEP_LENGTHS_MM = (1.0, 3.0, 5.0)

#: Worker counts the reproducibility gate compares.
WORKER_COUNTS = (1, 2, 4)


@dataclass(frozen=True)
class LutBenchResult:
    """One closed-form-vs-LUT timing comparison.

    ``scalar_wall_s`` times the closed-form path, ``kernel_wall_s``
    the LUT-served one (the registry's ``op`` schema names);
    ``max_rel_diff`` records how far the LUT answers drifted from the
    closed form (informational — the accuracy gate is the artifact's
    own interpolation-error contract, not this).
    """

    op: str
    n: int
    scalar_wall_s: float
    kernel_wall_s: float
    max_rel_diff: float
    gate_ok: bool
    scalar_wall_se: float = 0.0
    kernel_wall_se: float = 0.0
    reps: int = 1

    @property
    def speedup(self) -> float:
        """Closed-form wall time over LUT wall time (dimensionless)."""
        return self.scalar_wall_s / self.kernel_wall_s

    @property
    def passed(self) -> bool:
        """Speedup floor and the per-op correctness gate."""
        return self.gate_ok and self.speedup >= SPEEDUP_FLOOR

    def to_payload(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "n": self.n,
            "wall_s": {"scalar": self.scalar_wall_s,
                       "kernel": self.kernel_wall_s},
            "wall_se": {"scalar": self.scalar_wall_se,
                        "kernel": self.kernel_wall_se},
            "reps": self.reps,
            "speedup": self.speedup,
            "speedup_floor": SPEEDUP_FLOOR,
            "max_rel_diff": self.max_rel_diff,
            "gate_ok": self.gate_ok,
            "passed": self.passed,
        }

    def format(self) -> str:
        verdict = "ok" if self.passed else "FAIL"
        return (f"{self.op:<14} n={self.n:<6d} "
                f"closed {self.scalar_wall_s:8.3f} s   "
                f"lut {self.kernel_wall_s:8.3f} s   "
                f"{self.speedup:7.1f}x   "
                f"max rel diff {self.max_rel_diff:.2e} [{verdict}]")


def _max_rel_diff(reference: np.ndarray,
                  candidate: np.ndarray) -> float:
    reference = np.asarray(reference, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    scale = np.maximum(np.abs(reference), 1e-300)
    return float(np.max(np.abs(candidate - reference) / scale))


def run_link_sweep_bench(model, lut, max_delay: float,
                         lengths_mm: Tuple[float, ...],
                         reps: int = 1) -> LutBenchResult:
    """Time the min-power design sweep, closed form vs LUT.

    Both sides run their production search (the closed form uses the
    batched kernel search, the LUT its cell-crossing fast path).  The
    gate: every length feasible on the closed form must be feasible on
    the LUT *and* meet ``max_delay`` — the LUT may pick a slightly
    different size (interpolated surface), which ``max_rel_diff``
    records over delay and power of the designs.
    """
    from repro.buffering.optimizer import minimize_power_under_delay
    from repro.runtime.metrics import METRICS, Histogram

    closed_walls = Histogram()
    lut_walls = Histogram()
    closed = served = None
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        closed = [minimize_power_under_delay(model, mm(length),
                                             max_delay)
                  for length in lengths_mm]
        elapsed = time.perf_counter() - started
        closed_walls.observe(elapsed)
        METRICS.observe("bench.lut_link_sweep.scalar_seconds", elapsed)

        started = time.perf_counter()
        served = [minimize_power_under_delay(lut, mm(length),
                                             max_delay)
                  for length in lengths_mm]
        elapsed = time.perf_counter() - started
        lut_walls.observe(elapsed)
        METRICS.observe("bench.lut_link_sweep.kernel_seconds", elapsed)

    gate_ok = True
    diff = 0.0
    for reference, candidate in zip(closed, served):
        if reference is None and candidate is None:
            continue
        if reference is None or candidate is None:
            gate_ok = False
            continue
        if candidate.delay > max_delay:
            gate_ok = False
        diff = max(diff, _max_rel_diff(reference.delay,
                                       candidate.delay))
        diff = max(diff, _max_rel_diff(reference.power,
                                       candidate.power))
    return LutBenchResult(op="link_sweep", n=len(lengths_mm),
                          scalar_wall_s=closed_walls.mean,
                          kernel_wall_s=lut_walls.mean,
                          max_rel_diff=diff,
                          gate_ok=gate_ok,
                          scalar_wall_se=closed_walls.standard_error(),
                          kernel_wall_se=lut_walls.standard_error(),
                          reps=closed_walls.count)


def run_monte_carlo_bench(model, lut, samples: int, seed: int = 2010,
                          reps: int = 1) -> LutBenchResult:
    """Time the ``"model"``-engine Monte-Carlo, closed form vs LUT.

    The closed form evaluates one Python stage chain per draw; the LUT
    serves a tabulated nominal plus first-order sensitivities and
    folds every draw into one batched inner product.  The gate:
    bit-identical LUT samples at ``workers`` 1, 2 and 4 (the lane runs
    in-process, so any divergence is a determinism bug), with
    ``max_rel_diff`` recording the first-order-vs-exact spread.
    """
    from repro.runtime.metrics import METRICS, Histogram
    from repro.signoff.extraction import extract_buffered_line
    from repro.signoff.variation import monte_carlo_line_delay

    line = extract_buffered_line(model.tech, model.config, mm(10), 20,
                                 40.0)

    closed_walls = Histogram()
    lut_walls = Histogram()
    closed = served = None
    for _ in range(max(1, reps)):
        started = time.perf_counter()
        closed = monte_carlo_line_delay(line, ps(100), samples=samples,
                                        seed=seed, workers=1,
                                        engine="model", model=model)
        elapsed = time.perf_counter() - started
        closed_walls.observe(elapsed)
        METRICS.observe("bench.lut_monte_carlo.scalar_seconds",
                        elapsed)

        started = time.perf_counter()
        served = monte_carlo_line_delay(line, ps(100), samples=samples,
                                        seed=seed, workers=1,
                                        engine="model", model=lut)
        elapsed = time.perf_counter() - started
        lut_walls.observe(elapsed)
        METRICS.observe("bench.lut_monte_carlo.kernel_seconds",
                        elapsed)

    reference = np.array(served.samples)
    gate_ok = True
    for workers in WORKER_COUNTS[1:]:
        repeat = monte_carlo_line_delay(line, ps(100), samples=samples,
                                        seed=seed, workers=workers,
                                        engine="model", model=lut)
        if not np.array_equal(np.array(repeat.samples), reference):
            gate_ok = False
    diff = _max_rel_diff(np.array(closed.samples), reference)
    diff = max(diff, _max_rel_diff(closed.nominal_delay,
                                   served.nominal_delay))
    return LutBenchResult(op="monte_carlo", n=samples,
                          scalar_wall_s=closed_walls.mean,
                          kernel_wall_s=lut_walls.mean,
                          max_rel_diff=diff,
                          gate_ok=gate_ok,
                          scalar_wall_se=closed_walls.standard_error(),
                          kernel_wall_se=lut_walls.standard_error(),
                          reps=closed_walls.count)


def run_lut_bench(node: str = "90nm", quick: bool = False,
                  samples: Optional[int] = None,
                  output: str = "BENCH_lut.json",
                  reps: int = 1,
                  history: Optional[str] = None
                  ) -> "Tuple[int, Dict[str, Any]]":
    """Run the LUT benchmarks, write ``output``, return (status, report).

    Builds the artifact in-process (the coarse grid with ``--quick``,
    the default grid otherwise) so the report always measures the
    generator at head, then gates as described in the module
    docstring; status 1 on any gate failure.  Appends one ``"lut"``
    record to the registry history for ``repro bench diff``.
    """
    from repro import bench_registry
    from repro.experiments.suite import ModelSuite
    from repro.luts.build import build_artifact
    from repro.luts.grid import COARSE_GRID, DEFAULT_GRID
    from repro.luts.model import serve
    from repro.runtime.manifest import run_environment, utc_timestamp

    if samples is None:
        samples = QUICK_SAMPLES if quick else DEFAULT_SAMPLES
    lengths = QUICK_SWEEP_LENGTHS_MM if quick else SWEEP_LENGTHS_MM
    spec = COARSE_GRID if quick else DEFAULT_GRID

    suite = ModelSuite.for_node(node)
    model = suite.proposed
    started = time.perf_counter()
    artifact = build_artifact(model, node, spec)
    build_seconds = time.perf_counter() - started
    lut = serve(model, artifact)
    contract_ok = artifact.measured_rel_error <= spec.max_rel_error

    results: List[LutBenchResult] = [
        run_link_sweep_bench(model, lut, suite.tech.clock_period(),
                             lengths_mm=lengths, reps=reps),
        run_monte_carlo_bench(model, lut, samples=samples, reps=reps),
    ]
    report: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "generated_at": utc_timestamp(),
        "node": node,
        "quick": quick,
        "env": run_environment(),
        "artifact": {
            "content_hash": artifact.content_hash,
            "grid_points": spec.points,
            "build_seconds": build_seconds,
            "measured_rel_error": artifact.measured_rel_error,
            "error_contract": spec.max_rel_error,
            "contract_ok": contract_ok,
        },
        "results": [result.to_payload() for result in results],
    }
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    record = bench_registry.build_record(
        "lut", node=node, quick=quick,
        config={"node": node, "quick": quick, "samples": samples,
                "lengths_mm": list(lengths), "reps": reps,
                "grid_points": spec.points},
        samples=[bench_registry.BenchSample(
            name=f"{result.op}.{variant}",
            value=wall, se=se, n=result.n)
            for result in results
            for variant, wall, se in (
                ("scalar", result.scalar_wall_s,
                 result.scalar_wall_se),
                ("kernel", result.kernel_wall_s,
                 result.kernel_wall_se))],
        generated_at=report["generated_at"])
    history_path = bench_registry.append_record(record, history)
    formatted = [
        f"artifact {artifact.content_hash[:12]} "
        f"({spec.points} grid points, built in {build_seconds:.1f} s, "
        f"interp error {artifact.measured_rel_error:.2e} vs contract "
        f"{spec.max_rel_error:.2e} "
        f"[{'ok' if contract_ok else 'FAIL'}])",
    ]
    formatted.extend(result.format() for result in results)
    report["formatted"] = formatted
    report["history_path"] = str(history_path)
    status = 0 if contract_ok and all(result.passed
                                      for result in results) else 1
    return status, report
