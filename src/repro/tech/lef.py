"""Mini-LEF: reader/writer for the LEF subset used by the wire models.

LEF (Library Exchange Format) files carry the routing-layer geometry the
paper's wire models need: width, spacing, pitch and thickness per layer,
plus the standard-cell site (row height) used by the predictive area
model.  This module round-trips that subset:

.. code-block:: text

    VERSION 5.7 ;
    SITE core
      SIZE 0.28 BY 2.8 ;
    END core
    LAYER global
      TYPE ROUTING ;
      WIDTH 0.4 ;
      SPACING 0.4 ;
      THICKNESS 0.85 ;
      HEIGHT 0.65 ;
      DIELECTRIC 3.3 ;
      BARRIER 0.012 ;
    END global
    END LIBRARY

Dimensions in LEF are microns; conversion to/from the SI-unit
:class:`~repro.tech.parameters.WireLayerGeometry` happens here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.tech.parameters import TechnologyParameters, WireLayerGeometry
from repro.units import to_um, um


@dataclass
class LefSite:
    """A standard-cell placement site (width x height, microns)."""

    name: str
    width_um: float
    height_um: float


@dataclass
class LefLibrary:
    """Parsed contents of a mini-LEF file."""

    version: str = "5.7"
    sites: Dict[str, LefSite] = field(default_factory=dict)
    layers: Dict[str, WireLayerGeometry] = field(default_factory=dict)

    def routing_layer(self, name: str) -> WireLayerGeometry:
        try:
            return self.layers[name]
        except KeyError:
            known = ", ".join(sorted(self.layers))
            raise KeyError(f"no layer {name!r}; known layers: {known}")


class LefParseError(ValueError):
    """Raised when LEF text does not match the supported subset."""


def dumps(library: LefLibrary) -> str:
    """Serialize a :class:`LefLibrary` to mini-LEF text."""
    lines = [f"VERSION {library.version} ;"]
    for site in library.sites.values():
        lines.append(f"SITE {site.name}")
        lines.append(f"  SIZE {site.width_um:.6g} BY {site.height_um:.6g} ;")
        lines.append(f"END {site.name}")
    for layer in library.layers.values():
        lines.append(f"LAYER {layer.name}")
        lines.append("  TYPE ROUTING ;")
        lines.append(f"  WIDTH {to_um(layer.width):.6g} ;")
        lines.append(f"  SPACING {to_um(layer.spacing):.6g} ;")
        lines.append(f"  THICKNESS {to_um(layer.thickness):.6g} ;")
        lines.append(f"  HEIGHT {to_um(layer.ild_thickness):.6g} ;")
        lines.append(f"  DIELECTRIC {layer.dielectric_constant:.6g} ;")
        lines.append(f"  BARRIER {to_um(layer.barrier_thickness):.6g} ;")
        lines.append(f"END {layer.name}")
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"


def loads(text: str) -> LefLibrary:
    """Parse mini-LEF text into a :class:`LefLibrary`."""
    library = LefLibrary()
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    index = 0
    while index < len(lines):
        line = lines[index]
        tokens = line.replace(";", " ").split()
        if not tokens:
            index += 1
            continue
        keyword = tokens[0].upper()
        if keyword == "VERSION":
            library.version = tokens[1]
            index += 1
        elif keyword == "SITE":
            index = _parse_site(lines, index, library)
        elif keyword == "LAYER":
            index = _parse_layer(lines, index, library)
        elif keyword == "END":
            index += 1
        else:
            raise LefParseError(f"unsupported LEF statement: {line!r}")
    return library


def _parse_site(lines: List[str], index: int, library: LefLibrary) -> int:
    name = lines[index].split()[1]
    index += 1
    width = height = None
    while index < len(lines):
        tokens = lines[index].replace(";", " ").split()
        if tokens[0].upper() == "END":
            index += 1
            break
        if tokens[0].upper() == "SIZE":
            width = float(tokens[1])
            if tokens[2].upper() != "BY":
                raise LefParseError(f"malformed SIZE line: {lines[index]!r}")
            height = float(tokens[3])
        index += 1
    if width is None or height is None:
        raise LefParseError(f"site {name!r} is missing a SIZE statement")
    library.sites[name] = LefSite(name=name, width_um=width,
                                  height_um=height)
    return index


_LAYER_KEYS = {"WIDTH", "SPACING", "THICKNESS", "HEIGHT", "DIELECTRIC",
               "BARRIER"}


def _parse_layer(lines: List[str], index: int, library: LefLibrary) -> int:
    name = lines[index].split()[1]
    index += 1
    values: Dict[str, float] = {}
    while index < len(lines):
        tokens = lines[index].replace(";", " ").split()
        keyword = tokens[0].upper()
        if keyword == "END":
            index += 1
            break
        if keyword == "TYPE":
            if tokens[1].upper() != "ROUTING":
                raise LefParseError(
                    f"layer {name!r}: only ROUTING layers are supported")
        elif keyword in _LAYER_KEYS:
            values[keyword] = float(tokens[1])
        else:
            raise LefParseError(
                f"layer {name!r}: unsupported statement {lines[index]!r}")
        index += 1
    missing = _LAYER_KEYS - set(values)
    if missing:
        raise LefParseError(
            f"layer {name!r} is missing: {', '.join(sorted(missing))}")
    library.layers[name] = WireLayerGeometry(
        name=name,
        width=um(values["WIDTH"]),
        spacing=um(values["SPACING"]),
        thickness=um(values["THICKNESS"]),
        ild_thickness=um(values["HEIGHT"]),
        dielectric_constant=values["DIELECTRIC"],
        barrier_thickness=um(values["BARRIER"]),
    )
    return index


def from_technology(tech: TechnologyParameters) -> LefLibrary:
    """Export a technology node's wire stack and cell site as mini-LEF."""
    library = LefLibrary()
    library.sites["core"] = LefSite(
        name="core",
        width_um=to_um(tech.contact_pitch),
        height_um=to_um(tech.row_height),
    )
    library.layers = dict(tech.wire_layers)
    return library


def roundtrip(library: LefLibrary) -> LefLibrary:
    """Serialize then reparse (used by tests to verify losslessness)."""
    return loads(dumps(library))


def site_dimensions(library: LefLibrary,
                    name: str = "core") -> Tuple[float, float]:
    """(contact pitch, row height) in meters from a parsed site."""
    site: Optional[LefSite] = library.sites.get(name)
    if site is None:
        raise KeyError(f"no site {name!r} in LEF library")
    return um(site.width_um), um(site.height_um)
