"""Mini-Liberty: a small reader/writer for the Liberty (.lib) subset we use.

Section III-E of the paper derives its models from "Liberty library files
or SPICE simulations".  This module implements the Liberty building
blocks required for that flow: hierarchical groups, simple attributes,
and ``values(...)`` complex attributes (NLDM lookup tables), with a
round-trippable serializer.  The characterization harness exports its
tables as Liberty text and the calibration pipeline can read them back,
mirroring the paper's library-driven path.

The grammar subset:

.. code-block:: text

    group_name (arg1, arg2) {
        simple_attribute : value;
        complex_attribute ("1, 2", "3, 4");
        nested_group (name) { ... }
    }
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

AttributeValue = Union[str, float, int, bool]


@dataclass
class LibertyGroup:
    """One Liberty group: ``kind (args) { attributes; subgroups }``."""

    kind: str
    args: Tuple[str, ...] = ()
    attributes: Dict[str, AttributeValue] = field(default_factory=dict)
    complex_attributes: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict)
    groups: List["LibertyGroup"] = field(default_factory=list)

    # -- navigation ------------------------------------------------------

    @property
    def name(self) -> str:
        """First group argument (the conventional group name)."""
        return self.args[0] if self.args else ""

    def find(self, kind: str, name: Optional[str] = None
             ) -> Optional["LibertyGroup"]:
        """First subgroup of ``kind`` (and ``name``, when given)."""
        for group in self.groups:
            if group.kind == kind and (name is None or group.name == name):
                return group
        return None

    def find_all(self, kind: str) -> Iterator["LibertyGroup"]:
        """All direct subgroups of ``kind``."""
        return (group for group in self.groups if group.kind == kind)

    def require(self, kind: str, name: Optional[str] = None
                ) -> "LibertyGroup":
        """Like :meth:`find` but raises when the subgroup is missing."""
        group = self.find(kind, name)
        if group is None:
            label = kind if name is None else f"{kind}({name})"
            raise KeyError(f"group {self.kind}({self.name}) has no {label}")
        return group

    def add_group(self, kind: str, *args: str) -> "LibertyGroup":
        """Append and return a new subgroup."""
        group = LibertyGroup(kind=kind, args=tuple(args))
        self.groups.append(group)
        return group

    # -- NLDM helpers -----------------------------------------------------

    def set_table(self, index_1: Sequence[float], index_2: Sequence[float],
                  values: Sequence[Sequence[float]]) -> None:
        """Store a 2-D NLDM table on this group."""
        self.complex_attributes["index_1"] = (
            ", ".join(f"{x:.6g}" for x in index_1),)
        self.complex_attributes["index_2"] = (
            ", ".join(f"{x:.6g}" for x in index_2),)
        self.complex_attributes["values"] = tuple(
            ", ".join(f"{v:.6g}" for v in row) for row in values)

    def get_table(self) -> Tuple[List[float], List[float],
                                 List[List[float]]]:
        """Read back a 2-D NLDM table stored with :meth:`set_table`."""
        def floats(entry: Tuple[str, ...]) -> List[List[float]]:
            return [[float(token) for token in row.split(",")]
                    for row in entry]

        index_1 = floats(self.complex_attributes["index_1"])[0]
        index_2 = floats(self.complex_attributes["index_2"])[0]
        values = floats(self.complex_attributes["values"])
        return index_1, index_2, values


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def _format_value(value: AttributeValue) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        # Quote anything that is not a bare identifier/number.
        if re.fullmatch(r"[A-Za-z0-9_.\-+]+", value):
            return value
        return f'"{value}"'
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def dumps(group: LibertyGroup, indent: int = 0) -> str:
    """Serialize a group (recursively) to Liberty text."""
    pad = "    " * indent
    args = ", ".join(group.args)
    lines = [f"{pad}{group.kind} ({args}) {{"]
    for key, value in group.attributes.items():
        lines.append(f"{pad}    {key} : {_format_value(value)};")
    for key, rows in group.complex_attributes.items():
        if len(rows) == 1:
            lines.append(f'{pad}    {key} ("{rows[0]}");')
        else:
            body = ", \\\n".join(f'{pad}        "{row}"' for row in rows)
            lines.append(f"{pad}    {key} ( \\\n{body});")
    for sub in group.groups:
        lines.append(dumps(sub, indent + 1))
    lines.append(f"{pad}}}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"(?:[^"\\]|\\.)*")       # quoted string
    | (?P<punct>[(){};:,])               # punctuation
    | (?P<word>[^\s(){};:,"]+)           # bare word
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    # Strip comments and line continuations first.
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    text = re.sub(r"//[^\n]*", " ", text)
    text = text.replace("\\\n", " ")
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        token = match.group(0)
        if token.startswith('"'):
            token = token[1:-1]
            tokens.append(("string", token))
        elif match.lastgroup == "punct":
            tokens.append(("punct", token))
        else:
            tokens.append(("word", token))
    return tokens


class LibertyParseError(ValueError):
    """Raised when Liberty text does not match the supported subset."""


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[Tuple[str, str]]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        if token is None:
            raise LibertyParseError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, text: str) -> None:
        kind, value = self._next()
        if value != text:
            raise LibertyParseError(f"expected {text!r}, got {value!r}")

    def parse_group(self) -> LibertyGroup:
        _, kind = self._next()
        self._expect("(")
        args: List[str] = []
        while True:
            token_kind, value = self._next()
            if value == ")" and token_kind == "punct":
                break
            if value == "," and token_kind == "punct":
                continue
            args.append(value)
        self._expect("{")
        group = LibertyGroup(kind=kind, args=tuple(args))
        self._parse_body(group)
        return group

    def _parse_body(self, group: LibertyGroup) -> None:
        while True:
            token = self._peek()
            if token is None:
                raise LibertyParseError(
                    f"unterminated group {group.kind}({group.name})")
            kind, value = token
            if kind == "punct" and value == "}":
                self._next()
                return
            self._parse_statement(group)

    def _parse_statement(self, group: LibertyGroup) -> None:
        _, name = self._next()
        kind, value = self._next()
        if kind == "punct" and value == ":":
            self._parse_simple_attribute(group, name)
        elif kind == "punct" and value == "(":
            self._parse_parenthesized(group, name)
        else:
            raise LibertyParseError(
                f"unexpected token {value!r} after {name!r}")

    def _parse_simple_attribute(self, group: LibertyGroup,
                                name: str) -> None:
        parts: List[str] = []
        while True:
            kind, value = self._next()
            if kind == "punct" and value == ";":
                break
            parts.append(value)
        group.attributes[name] = _coerce(" ".join(parts))

    def _parse_parenthesized(self, group: LibertyGroup, name: str) -> None:
        entries: List[str] = []
        while True:
            kind, value = self._next()
            if kind == "punct" and value == ")":
                break
            if kind == "punct" and value == ",":
                continue
            entries.append(value)
        kind, value = self._next()
        if kind == "punct" and value == "{":
            subgroup = LibertyGroup(kind=name, args=tuple(entries))
            self._parse_body(subgroup)
            group.groups.append(subgroup)
        elif kind == "punct" and value == ";":
            group.complex_attributes[name] = tuple(entries)
        else:
            raise LibertyParseError(
                f"expected '{{' or ';' after {name}(...), got {value!r}")


def _coerce(text: str) -> AttributeValue:
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        number = float(text)
    except ValueError:
        return text
    if number.is_integer() and "." not in text and "e" not in text.lower():
        return int(number)
    return number


def loads(text: str) -> LibertyGroup:
    """Parse Liberty text into a :class:`LibertyGroup` tree."""
    tokens = _tokenize(text)
    if not tokens:
        raise LibertyParseError("empty Liberty input")
    parser = _Parser(tokens)
    group = parser.parse_group()
    if parser._peek() is not None:
        raise LibertyParseError("trailing tokens after top-level group")
    return group


def new_library(name: str, *, time_unit: str = "1ps",
                capacitive_load_unit: str = "1fF",
                voltage: float = 1.0) -> LibertyGroup:
    """Create an empty library group with the unit declarations we
    emit; ``voltage`` is the nominal supply in volts."""
    library = LibertyGroup(kind="library", args=(name,))
    library.attributes["time_unit"] = time_unit
    library.attributes["leakage_power_unit"] = "1nW"
    library.attributes["nom_voltage"] = voltage
    library.complex_attributes["capacitive_load_unit"] = (
        tuple(capacitive_load_unit.split()))
    return library
