"""Built-in technology parameter sets for six nanometer nodes.

The paper calibrates its models against TSMC 90/65-nm, a foundry 45-nm,
and PTM 32/22/16-nm technologies.  Those industry files cannot be
redistributed, so this module provides parameter sets assembled from the
public sources the paper itself recommends for system-level designers
(ITRS tables and PTM-style predictive device data).  Absolute values are
representative rather than foundry-exact; every derived trend the paper
relies on (supply and threshold scaling, the 1.0 V -> 1.1 V supply step
from 65 nm to 45 nm, shrinking wire cross-sections, growing resistivity
corrections, growing leakage) is preserved.

Values are given here in engineering units (microns, fF/um, uA/um, GHz)
for readability and converted to SI on construction.
"""

from __future__ import annotations

from typing import Dict, List

from repro.tech.parameters import (
    DeviceParameters,
    TechnologyParameters,
    WireLayerGeometry,
)
from repro.units import ghz, nm, um

#: Nominal pMOS/nMOS width ratio used for all repeaters (Section III-E
#: keeps the P/N ratio constant across sizes).
DEFAULT_PN_RATIO = 2.0


def _k_sat(idsat_ua_per_um: float, vdd: float, vth: float,
           alpha: float) -> float:
    """Alpha-power transconductance (A/m) from a target Idsat (uA/um)."""
    overdrive = vdd - vth
    if overdrive <= 0:
        raise ValueError("vdd must exceed vth")
    idsat_per_meter = idsat_ua_per_um * 1e-6 / 1e-6  # uA/um -> A/m
    return idsat_per_meter / overdrive**alpha


def _device(polarity: int, vdd: float, vth: float, alpha: float,
            idsat_ua_per_um: float, c_gate_ff_per_um: float,
            i_leak_na_per_um: float, gate_leak_fraction: float,
            ) -> DeviceParameters:
    """Build one device flavour from engineering-unit inputs."""
    return DeviceParameters(
        polarity=polarity,
        vth=vth,
        alpha=alpha,
        k_sat=_k_sat(idsat_ua_per_um, vdd, vth, alpha),
        k_lin=0.45,
        channel_length_modulation=0.15,
        c_gate=c_gate_ff_per_um * 1e-15 / 1e-6,
        c_drain=0.5 * c_gate_ff_per_um * 1e-15 / 1e-6,
        i_leak=i_leak_na_per_um * 1e-9 / 1e-6,
        i_gate_leak=gate_leak_fraction * i_leak_na_per_um * 1e-9 / 1e-6,
    )


def _wire_layers(w_um: float, s_um: float, t_um: float, h_um: float,
                 k: float, barrier_nm: float) -> Dict[str, WireLayerGeometry]:
    """Global + intermediate wire layers from global-layer geometry."""
    global_layer = WireLayerGeometry(
        name="global",
        width=um(w_um),
        spacing=um(s_um),
        thickness=um(t_um),
        ild_thickness=um(h_um),
        dielectric_constant=k,
        barrier_thickness=nm(barrier_nm),
    )
    intermediate = WireLayerGeometry(
        name="intermediate",
        width=um(0.5 * w_um),
        spacing=um(0.5 * s_um),
        thickness=um(0.55 * t_um),
        ild_thickness=um(0.6 * h_um),
        dielectric_constant=k,
        barrier_thickness=nm(0.8 * barrier_nm),
    )
    return {"global": global_layer, "intermediate": intermediate}


def _node(name: str, feature_nm: float, vdd: float, vth_n: float,
          vth_p: float, alpha: float, idsat_n: float, idsat_p: float,
          c_gate: float, i_leak: float, gate_leak_fraction: float,
          wire: "tuple[float, float, float, float, float, float]",
          row_height_um: float, contact_pitch_um: float,
          clock_ghz: float, min_wn_um: float) -> TechnologyParameters:
    nmos = _device(+1, vdd, vth_n, alpha, idsat_n, c_gate, i_leak,
                   gate_leak_fraction)
    pmos = _device(-1, vdd, vth_p, alpha, idsat_p, c_gate, 0.5 * i_leak,
                   gate_leak_fraction)
    return TechnologyParameters(
        name=name,
        feature_size=nm(feature_nm),
        vdd=vdd,
        nmos=nmos,
        pmos=pmos,
        pn_ratio=DEFAULT_PN_RATIO,
        wire_layers=_wire_layers(*wire),
        row_height=um(row_height_um),
        contact_pitch=um(contact_pitch_um),
        clock_frequency=ghz(clock_ghz),
        min_nmos_width=um(min_wn_um),
    )


#: The six nodes of Table I.  Wire tuple: (w, s, t, h, k, barrier_nm) with
#: lengths in microns except the barrier in nanometers.
TECHNOLOGY_NODES: Dict[str, TechnologyParameters] = {
    "90nm": _node("90nm", 90, 1.0, 0.30, 0.32, 1.35, 600, 280, 1.00,
                  100, 0.5, (0.40, 0.40, 0.85, 0.65, 3.3, 12.0),
                  2.8, 0.28, 1.5, 0.55),
    "65nm": _node("65nm", 65, 1.0, 0.28, 0.30, 1.32, 700, 330, 0.85,
                  200, 0.6, (0.30, 0.30, 0.65, 0.50, 3.0, 10.0),
                  2.0, 0.20, 2.25, 0.40),
    "45nm": _node("45nm", 45, 1.1, 0.32, 0.34, 1.30, 800, 380, 0.75,
                  300, 0.1, (0.20, 0.20, 0.45, 0.38, 2.8, 8.0),
                  1.4, 0.14, 3.0, 0.30),
    "32nm": _node("32nm", 32, 0.9, 0.27, 0.29, 1.28, 850, 410, 0.65,
                  400, 0.1, (0.14, 0.14, 0.32, 0.28, 2.6, 6.0),
                  1.0, 0.10, 3.5, 0.22),
    "22nm": _node("22nm", 22, 0.8, 0.25, 0.27, 1.25, 900, 440, 0.55,
                  500, 0.1, (0.10, 0.10, 0.23, 0.21, 2.4, 5.0),
                  0.7, 0.075, 4.0, 0.16),
    "16nm": _node("16nm", 16, 0.7, 0.22, 0.24, 1.22, 950, 470, 0.50,
                  600, 0.1, (0.072, 0.072, 0.17, 0.16, 2.2, 4.0),
                  0.5, 0.056, 4.5, 0.12),
}


def available_nodes() -> List[str]:
    """Names of the built-in technology nodes, largest feature first."""
    return sorted(TECHNOLOGY_NODES,
                  key=lambda name: -TECHNOLOGY_NODES[name].feature_size)


def get_technology(name: str) -> TechnologyParameters:
    """Look up a built-in technology node by name (e.g. ``"65nm"``)."""
    try:
        return TECHNOLOGY_NODES[name]
    except KeyError:
        known = ", ".join(available_nodes())
        raise KeyError(f"unknown technology {name!r}; known nodes: {known}")
