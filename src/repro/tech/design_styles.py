"""Wire design styles.

The paper evaluates two global-wiring design styles (Table II):

* ``SWSS`` — single width, single spacing: minimum-pitch bus wires whose
  neighbours are other switching signals.  Worst-case neighbour switching
  amplifies the lateral capacitance by a Miller factor close to 2.
* ``SHIELDED`` — a grounded shield wire is inserted between every pair of
  signal wires.  The lateral capacitance still exists but never switches,
  so the Miller factor is exactly 1 and the delay is deterministic; the
  price is roughly double the routing area.

Section III-D additionally uses *staggered* repeater insertion, which
cancels the coupling term in the delay equation (Miller factor 0 for
delay) while the switched power is unchanged; that is modelled by
:class:`WireConfiguration.staggered`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.tech.capacitance import wire_capacitances
from repro.tech.parameters import WireLayerGeometry
from repro.tech.resistivity import wire_resistance_per_meter


class DesignStyle(enum.Enum):
    """Global-wiring design style."""

    SWSS = "swss"
    SHIELDED = "shielded"
    DOUBLE_SPACING = "double-spacing"

    @property
    def description(self) -> str:
        return {
            DesignStyle.SWSS: "single width, single spacing",
            DesignStyle.SHIELDED: "grounded shields between signals",
            DesignStyle.DOUBLE_SPACING: "doubled inter-signal spacing",
        }[self]


#: Worst-case Miller amplification of the lateral capacitance when both
#: neighbours switch in the opposite direction during the victim's
#: transition window.  The classic bound is 2; switching-window overlap
#: makes the effective value slightly smaller.
WORST_CASE_MILLER = 1.9


@dataclass(frozen=True)
class WireConfiguration:
    """A wire layer combined with a design style and a switching assumption.

    This is the object the wire-delay/power models consume: it exposes the
    per-meter resistance and the ground/coupling capacitances *after* the
    design style has been applied, plus the Miller factors for delay and
    for switched power.
    """

    layer: WireLayerGeometry
    style: DesignStyle = DesignStyle.SWSS
    delay_miller: float = WORST_CASE_MILLER
    power_miller: float = 1.0
    include_scattering: bool = True
    include_barrier: bool = True

    @classmethod
    def for_style(
        cls,
        layer: WireLayerGeometry,
        style: DesignStyle,
        include_scattering: bool = True,
        include_barrier: bool = True,
    ) -> "WireConfiguration":
        """Build the standard configuration for a design style."""
        if style is DesignStyle.SWSS:
            effective_layer = layer
            delay_miller = WORST_CASE_MILLER
        elif style is DesignStyle.SHIELDED:
            # Shields are static: lateral capacitance counts once, always.
            effective_layer = layer
            delay_miller = 1.0
        elif style is DesignStyle.DOUBLE_SPACING:
            effective_layer = layer.scaled(spacing_multiple=2.0)
            delay_miller = WORST_CASE_MILLER
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown design style {style}")
        return cls(
            layer=effective_layer,
            style=style,
            delay_miller=delay_miller,
            power_miller=1.0,
            include_scattering=include_scattering,
            include_barrier=include_barrier,
        )

    # -- derived electricals -------------------------------------------

    def resistance_per_meter(self) -> float:
        """Wire resistance in ohm/m (with the configured resistivity
        corrections)."""
        return wire_resistance_per_meter(
            self.layer,
            include_scattering=self.include_scattering,
            include_barrier=self.include_barrier,
        )

    def ground_capacitance_per_meter(self) -> float:
        """Ground capacitance ``c_g`` in F/m (both planes)."""
        ground, _ = wire_capacitances(self.layer)
        return ground

    def coupling_capacitance_per_meter(self) -> float:
        """Total lateral capacitance ``c_c`` in F/m (both neighbours)."""
        _, coupling = wire_capacitances(self.layer)
        return coupling

    def switched_capacitance_per_meter(self) -> float:
        """Capacitance per meter charged by the driver each transition."""
        return (self.ground_capacitance_per_meter()
                + self.power_miller * self.coupling_capacitance_per_meter())

    def signal_pitch(self) -> float:
        """Routing pitch consumed per signal bit, in meters.

        Shielding interleaves one shield track per signal track, doubling
        the consumed pitch.
        """
        pitch = self.layer.pitch
        if self.style is DesignStyle.SHIELDED:
            return 2.0 * pitch
        return pitch

    def staggered(self) -> "WireConfiguration":
        """The same wires with staggered repeater insertion.

        Staggering aligns neighbouring transitions so the coupling term
        drops out of the *delay* equation (Miller factor 0) while the
        switched capacitance for power is unchanged.
        """
        return WireConfiguration(
            layer=self.layer,
            style=self.style,
            delay_miller=0.0,
            power_miller=self.power_miller,
            include_scattering=self.include_scattering,
            include_barrier=self.include_barrier,
        )
