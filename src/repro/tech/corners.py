"""Process/voltage corners.

The paper motivates accurate early models by the need to "reduce design
guard band" — the margin added because early estimates are taken at a
single typical point.  This module provides the corner machinery that
quantifies such guard bands: derated views of a technology node
(slow/typical/fast process, low/high supply) produced by consistent
parameter shifts, so any model or experiment in the library can be
re-run across corners.

Derating rules (standard practice):

* **Process**: drive strength (``k_sat``) and threshold move together —
  a slow corner has weaker drive and higher ``vth``; leakage moves the
  opposite way (slow process leaks less).
* **Voltage**: the supply shifts by a percentage; device parameters are
  untouched (their bias dependence is in the model equations).
* **Wires**: metal thickness and width vary with process, moving
  resistance against capacitance (thicker metal: less R, more lateral C).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Dict

from repro.tech.parameters import (
    DeviceParameters,
    TechnologyParameters,
    WireLayerGeometry,
)


class ProcessCorner(enum.Enum):
    """Named process/voltage corner."""

    SLOW = "ss"
    TYPICAL = "tt"
    FAST = "ff"


@dataclass(frozen=True)
class CornerDerating:
    """Multiplicative shifts applied to build one corner.

    Fractions are signed: ``drive_shift = -0.1`` weakens drive by 10%.
    """

    drive_shift: float
    vth_shift: float
    leakage_shift: float
    vdd_shift: float
    metal_thickness_shift: float

    def scale(self, value: float, shift: float) -> float:
        """Derate ``value`` (any unit, preserved) by the dimensionless
        fractional ``shift``."""
        return value * (1.0 + shift)


#: Standard three-corner set: ±10% drive, ∓5% vth, ±10% supply
#: (worst-case low voltage at the slow corner), ±8% metal.
STANDARD_CORNERS: Dict[ProcessCorner, CornerDerating] = {
    ProcessCorner.SLOW: CornerDerating(
        drive_shift=-0.10, vth_shift=+0.05, leakage_shift=-0.40,
        vdd_shift=-0.10, metal_thickness_shift=-0.08),
    ProcessCorner.TYPICAL: CornerDerating(
        drive_shift=0.0, vth_shift=0.0, leakage_shift=0.0,
        vdd_shift=0.0, metal_thickness_shift=0.0),
    ProcessCorner.FAST: CornerDerating(
        drive_shift=+0.10, vth_shift=-0.05, leakage_shift=+0.80,
        vdd_shift=+0.10, metal_thickness_shift=+0.08),
}


def _derate_device(device: DeviceParameters,
                   derating: CornerDerating) -> DeviceParameters:
    return dataclasses.replace(
        device,
        k_sat=derating.scale(device.k_sat, derating.drive_shift),
        vth=derating.scale(device.vth, derating.vth_shift),
        i_leak=derating.scale(device.i_leak, derating.leakage_shift),
        i_gate_leak=derating.scale(device.i_gate_leak,
                                   derating.leakage_shift),
    )


def _derate_layer(layer: WireLayerGeometry,
                  derating: CornerDerating) -> WireLayerGeometry:
    return dataclasses.replace(
        layer,
        thickness=derating.scale(layer.thickness,
                                 derating.metal_thickness_shift),
    )


def apply_corner(
    tech: TechnologyParameters,
    corner: ProcessCorner,
    deratings: "Dict[ProcessCorner, CornerDerating] | None" = None,
) -> TechnologyParameters:
    """A corner view of a technology node.

    The typical corner returns parameters equal to the input (with a
    corner-suffixed name), so corner sweeps can treat all three
    uniformly.
    """
    if deratings is None:
        deratings = STANDARD_CORNERS
    derating = deratings[corner]
    return dataclasses.replace(
        tech,
        name=f"{tech.name}-{corner.value}",
        vdd=derating.scale(tech.vdd, derating.vdd_shift),
        nmos=_derate_device(tech.nmos, derating),
        pmos=_derate_device(tech.pmos, derating),
        wire_layers={name: _derate_layer(layer, derating)
                     for name, layer in tech.wire_layers.items()},
    )


def corner_sweep(tech: TechnologyParameters
                 ) -> Dict[ProcessCorner, TechnologyParameters]:
    """All three standard corner views of a node."""
    return {corner: apply_corner(tech, corner)
            for corner in ProcessCorner}


def guard_band(slow_value: float, typical_value: float) -> float:
    """Fractional margin a designer must add over the typical estimate.

    The quantity the paper's accurate-models argument is about: with a
    coarse model you budget for the worst corner blindly; with accurate
    per-corner estimates the guard band is measured, not guessed.
    """
    if typical_value <= 0:
        raise ValueError("typical_value must be positive")
    return slow_value / typical_value - 1.0
