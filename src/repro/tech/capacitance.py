"""Wire capacitance from geometry.

Closed-form ground and coupling capacitance formulas for a wire running in
parallel with two same-layer neighbours between two orthogonal routing
planes — the canonical configuration for global buses.  The functional
forms are the empirically fitted expressions widely used for on-chip
interconnect (plate term plus fringe/lateral corrections); they are smooth
in all geometry parameters, which the regression machinery and the
property-based tests rely on.

All capacitances are per meter of wire length, in F/m.
"""

from __future__ import annotations

from typing import Tuple

from repro.tech.parameters import WireLayerGeometry
from repro.units import EPSILON_0


def ground_capacitance_per_meter(layer: WireLayerGeometry) -> float:
    """Capacitance per meter from the wire to the planes above and below.

    Uses a plate term plus fitted fringe corrections; the neighbour wires
    partially shield the fringing field, which the ``s``-dependent factor
    captures.  The result covers *both* conducting planes (global wires in
    a metal stack see a plane above and a plane below).
    """
    eps = layer.dielectric_constant * EPSILON_0
    w = layer.width
    s = layer.spacing
    t = layer.thickness
    h = layer.ild_thickness

    plate = w / h
    fringe = (2.04 * (s / (s + 0.54 * h)) ** 1.77
              * (t / (t + 4.53 * h)) ** 0.07)
    per_plane = eps * (plate + fringe)
    return 2.0 * per_plane


def coupling_capacitance_per_meter(layer: WireLayerGeometry) -> float:
    """Capacitance per meter to *one* same-layer neighbour wire.

    A bus wire has two lateral neighbours; callers that need the total
    lateral capacitance should use ``2 * coupling_capacitance_per_meter``
    (as :func:`wire_capacitances` does).
    """
    eps = layer.dielectric_constant * EPSILON_0
    w = layer.width
    s = layer.spacing
    t = layer.thickness
    h = layer.ild_thickness

    lateral_plate = 1.14 * (t / s) * (h / (h + 2.06 * s)) ** 0.09
    fringe_a = 0.74 * (w / (w + 1.59 * s)) ** 1.14
    fringe_b = (1.16 * (w / (w + 1.87 * s)) ** 0.16
                * (h / (h + 0.98 * s)) ** 1.18)
    return eps * (lateral_plate + fringe_a + fringe_b)


def wire_capacitances(layer: WireLayerGeometry) -> Tuple[float, float]:
    """(ground, total coupling) capacitance per meter for a bus wire.

    ``ground`` covers both orthogonal planes; ``total coupling`` covers
    both lateral neighbours.  These are the ``c_g`` and ``c_c`` of the
    wire-delay model in Section III-B.
    """
    ground = ground_capacitance_per_meter(layer)
    coupling = 2.0 * coupling_capacitance_per_meter(layer)
    return ground, coupling


def total_capacitance_per_meter(
    layer: WireLayerGeometry,
    miller_factor: float = 1.0,
) -> float:
    """Total switched capacitance per meter seen by a driver.

    ``miller_factor`` scales the lateral component for the assumed
    neighbour activity: 0 for shielded/staggered wires, 1 for quiet
    neighbours, up to 2 for worst-case opposite switching.
    """
    if miller_factor < 0:
        raise ValueError("miller_factor must be non-negative")
    ground, coupling = wire_capacitances(layer)
    return ground + miller_factor * coupling
