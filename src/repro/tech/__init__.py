"""Technology database: device, wire and cell-geometry parameters.

This package is the substitute for the industry technology files the paper
relies on (Liberty, LEF, ITF) and for the public sources it recommends for
future nodes (ITRS, PTM).  It provides:

* :mod:`repro.tech.parameters` — typed parameter containers.
* :mod:`repro.tech.nodes` — built-in parameter sets for 90/65/45/32/22/16 nm.
* :mod:`repro.tech.resistivity` — width-dependent copper resistivity
  (electron scattering + barrier thickness).
* :mod:`repro.tech.capacitance` — wire ground/coupling capacitance from
  geometry.
* :mod:`repro.tech.design_styles` — wire design styles (width/spacing/
  shielding) and their Miller factors.
* :mod:`repro.tech.liberty` / :mod:`repro.tech.lef` — mini Liberty / LEF
  readers and writers for generated libraries.
"""

from repro.tech.parameters import (
    DeviceParameters,
    TechnologyParameters,
    WireLayerGeometry,
)
from repro.tech.nodes import (
    TECHNOLOGY_NODES,
    available_nodes,
    get_technology,
)
from repro.tech.design_styles import DesignStyle, WireConfiguration
from repro.tech.resistivity import (
    barrier_adjusted_area_fraction,
    effective_resistivity,
    scattering_resistivity,
    wire_resistance_per_meter,
)
from repro.tech.capacitance import (
    coupling_capacitance_per_meter,
    ground_capacitance_per_meter,
    wire_capacitances,
)

__all__ = [
    "DeviceParameters",
    "TechnologyParameters",
    "WireLayerGeometry",
    "TECHNOLOGY_NODES",
    "available_nodes",
    "get_technology",
    "DesignStyle",
    "WireConfiguration",
    "barrier_adjusted_area_fraction",
    "effective_resistivity",
    "scattering_resistivity",
    "wire_resistance_per_meter",
    "coupling_capacitance_per_meter",
    "ground_capacitance_per_meter",
    "wire_capacitances",
]
