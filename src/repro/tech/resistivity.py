"""Width-dependent copper resistivity.

Section III-B of the paper improves the Pamunuwa wire model with two
effects that dominate nanometer-regime wire resistance:

1. **Electron scattering** — surface (Fuchs–Sondheimer) and grain-boundary
   (Mayadas–Shatzkes) scattering raise the effective resistivity as the
   wire cross-section approaches the electron mean free path.  We use the
   closed-form width-dependent approximation in the style of Shi & Pan
   (ASPDAC 2006).
2. **Barrier thickness** — the refractory diffusion barrier (Ta/TaN) that
   lines the damascene trench conducts essentially no current, so the
   copper cross-section is smaller than the drawn cross-section (Lu et al.,
   CICC 2007; Travaly et al., 2006).

Both effects *increase* resistance, which is why models that ignore them
(the Bakoglu and Pamunuwa baselines) are optimistic about long wires.
"""

from __future__ import annotations

from repro.tech.parameters import WireLayerGeometry
from repro.units import COPPER_BULK_RESISTIVITY, COPPER_MEAN_FREE_PATH

#: Fraction of electrons specularly (non-diffusively) reflected at the
#: copper surface.  0 = fully diffuse (worst case), 1 = mirror-like.
DEFAULT_SPECULARITY = 0.25

#: Grain-boundary reflection coefficient of copper.
DEFAULT_GRAIN_REFLECTIVITY = 0.30


def scattering_resistivity(
    width: float,
    thickness: float,
    bulk_resistivity: float = COPPER_BULK_RESISTIVITY,
    mean_free_path: float = COPPER_MEAN_FREE_PATH,
    specularity: float = DEFAULT_SPECULARITY,
    grain_reflectivity: float = DEFAULT_GRAIN_REFLECTIVITY,
) -> float:
    """Effective copper resistivity in ohm-meters for a wire cross-section.

    Combines the Fuchs–Sondheimer surface-scattering correction (thin-film
    limit, applied to both the width and thickness dimensions) with the
    Mayadas–Shatzkes grain-boundary correction, assuming the mean grain
    diameter tracks the wire width — the standard closed-form treatment
    used by Shi & Pan for wire sizing.

    Parameters are the *copper* (post-barrier) width and thickness.
    """
    if width <= 0 or thickness <= 0:
        raise ValueError("width and thickness must be positive")
    if not 0.0 <= specularity < 1.0:
        raise ValueError("specularity must lie in [0, 1)")
    if not 0.0 < grain_reflectivity < 1.0:
        raise ValueError("grain_reflectivity must lie in (0, 1)")

    # Surface scattering: 3/8 * (1 - p) * lambda * (1/w + 1/t).
    surface = (0.375 * (1.0 - specularity) * mean_free_path
               * (1.0 / width + 1.0 / thickness))

    # Grain-boundary scattering: alpha = lambda * R / (d * (1 - R)) with
    # grain size d ~ width; the 1.5 * alpha form is the small-alpha
    # expansion of the Mayadas-Shatzkes integral.
    alpha = (mean_free_path * grain_reflectivity
             / (width * (1.0 - grain_reflectivity)))
    grain = 1.5 * alpha

    return bulk_resistivity * (1.0 + surface + grain)


def barrier_adjusted_area_fraction(layer: WireLayerGeometry) -> float:
    """Fraction of the drawn cross-section that is actually copper.

    The barrier lines both sidewalls and the trench bottom, so the copper
    cross-section is ``(w - 2*tb) * (t - tb)``.
    """
    copper_width = layer.width - 2.0 * layer.barrier_thickness
    copper_thickness = layer.thickness - layer.barrier_thickness
    if copper_width <= 0 or copper_thickness <= 0:
        raise ValueError("barrier consumes the whole cross-section")
    return (copper_width * copper_thickness) / (layer.width * layer.thickness)


def effective_resistivity(
    layer: WireLayerGeometry,
    include_scattering: bool = True,
    include_barrier: bool = True,
) -> float:
    """Effective resistivity (ohm-m) referred to the *drawn* cross-section.

    With both corrections disabled this degenerates to bulk copper, which
    is what the classic baseline models assume.
    """
    if include_barrier:
        copper_width = layer.width - 2.0 * layer.barrier_thickness
        copper_thickness = layer.thickness - layer.barrier_thickness
    else:
        copper_width = layer.width
        copper_thickness = layer.thickness

    if include_scattering:
        rho = scattering_resistivity(copper_width, copper_thickness)
    else:
        rho = COPPER_BULK_RESISTIVITY

    # Refer the resistivity to the drawn area so that callers can keep
    # using the drawn geometry: R = rho_eff * L / (w * t).
    drawn_area = layer.width * layer.thickness
    copper_area = copper_width * copper_thickness
    return rho * drawn_area / copper_area


def wire_resistance_per_meter(
    layer: WireLayerGeometry,
    include_scattering: bool = True,
    include_barrier: bool = True,
) -> float:
    """Wire resistance per meter of length, in ohm/m."""
    rho = effective_resistivity(layer, include_scattering, include_barrier)
    return rho / (layer.width * layer.thickness)
