"""Typed containers for technology parameters.

All values are stored in SI units (meters, ohms, farads, volts, amperes,
watts, hertz).  The built-in parameter sets live in
:mod:`repro.tech.nodes`; this module only defines the data model and the
derived quantities that follow directly from it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class DeviceParameters:
    """Compact-model parameters for one MOSFET flavour (nMOS or pMOS).

    The transient simulator uses the Sakurai–Newton alpha-power law, so the
    parameters here are the alpha-power coefficients plus the linear
    capacitances that dominate digital switching behaviour.

    Attributes
    ----------
    polarity:
        ``+1`` for nMOS, ``-1`` for pMOS.
    vth:
        Threshold voltage magnitude in volts (always positive).
    alpha:
        Velocity-saturation index of the alpha-power law (1 = fully
        velocity saturated, 2 = long-channel square law).
    k_sat:
        Saturation transconductance in A/m of device width: the drain
        saturation current of a device of width ``w`` at gate overdrive
        ``v_ov`` is ``k_sat * w * v_ov**alpha``.
    k_lin:
        Ratio ``v_dsat / v_ov**(alpha/2)`` in V^(1-alpha/2); sets where the
        linear region ends.
    channel_length_modulation:
        Lambda of the ``(1 + lambda * v_ds)`` saturation-current correction,
        in 1/V.
    c_gate:
        Gate capacitance per meter of width, in F/m.
    c_drain:
        Drain (diffusion) capacitance per meter of width, in F/m.
    i_leak:
        Subthreshold (off-state) leakage current per meter of width at
        ``v_gs = 0`` and ``v_ds = vdd``, in A/m.
    i_gate_leak:
        Gate-tunneling leakage current per meter of width, in A/m.
    subthreshold_slope:
        Subthreshold swing factor ``n`` of ``exp(v_gs / (n * v_T))``
        (dimensionless, typically 1.2–1.6).
    """

    polarity: int
    vth: float
    alpha: float
    k_sat: float
    k_lin: float
    channel_length_modulation: float
    c_gate: float
    c_drain: float
    i_leak: float
    i_gate_leak: float
    subthreshold_slope: float = 1.4

    def __post_init__(self) -> None:
        if self.polarity not in (+1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {self.polarity}")
        if self.vth <= 0:
            raise ValueError("vth is a magnitude and must be positive")
        if not 1.0 <= self.alpha <= 2.0:
            raise ValueError(f"alpha must lie in [1, 2], got {self.alpha}")
        for name in ("k_sat", "k_lin", "c_gate", "c_drain"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def is_nmos(self) -> bool:
        """True when this flavour is an nMOS device."""
        return self.polarity == +1

    def saturation_current(self, width: float, v_overdrive: float) -> float:
        """Drain saturation current in A for a device of ``width`` meters."""
        if v_overdrive <= 0:
            return 0.0
        return self.k_sat * width * v_overdrive**self.alpha

    def leakage_power(self, width: float, vdd: float) -> float:
        """Static power in W burned by an off device of ``width`` meters."""
        return (self.i_leak + self.i_gate_leak) * width * vdd


@dataclass(frozen=True)
class WireLayerGeometry:
    """Geometry of one interconnect layer (global or intermediate).

    Attributes (all meters unless noted):

    name:
        Layer name, e.g. ``"global"``.
    width:
        Minimum drawn wire width.
    spacing:
        Minimum spacing between adjacent wires.
    thickness:
        Metal thickness.
    ild_thickness:
        Inter-layer dielectric thickness (vertical distance to the
        neighbouring conducting planes).
    dielectric_constant:
        Relative permittivity of the surrounding dielectric
        (dimensionless).
    barrier_thickness:
        Thickness of the (high-resistivity) diffusion-barrier liner on
        each sidewall and the bottom of the trench.
    """

    name: str
    width: float
    spacing: float
    thickness: float
    ild_thickness: float
    dielectric_constant: float
    barrier_thickness: float

    def __post_init__(self) -> None:
        for attr in ("width", "spacing", "thickness", "ild_thickness",
                     "dielectric_constant"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.barrier_thickness < 0:
            raise ValueError("barrier_thickness must be non-negative")
        if 2 * self.barrier_thickness >= self.width:
            raise ValueError("barrier consumes the whole wire width")

    @property
    def pitch(self) -> float:
        """Wire pitch (width + spacing), in meters."""
        return self.width + self.spacing

    @property
    def aspect_ratio(self) -> float:
        """Thickness / width (dimensionless)."""
        return self.thickness / self.width

    def scaled(self, width_multiple: float = 1.0,
               spacing_multiple: float = 1.0) -> "WireLayerGeometry":
        """Return a copy with width/spacing scaled by dimensionless
        multiples (for design styles)."""
        return dataclasses.replace(
            self,
            width=self.width * width_multiple,
            spacing=self.spacing * spacing_multiple,
        )


@dataclass(frozen=True)
class TechnologyParameters:
    """Everything the models need to know about one technology node.

    This is the in-memory equivalent of the Liberty + LEF + ITF + ITRS
    inputs enumerated in Section III-E of the paper.

    Attributes
    ----------
    name:
        Human-readable node name, e.g. ``"90nm"``.
    feature_size:
        Nominal feature size (half-pitch) in meters.
    vdd:
        Nominal supply voltage in volts.
    nmos / pmos:
        Device parameters for the two flavours.
    pn_ratio:
        Width ratio ``w_p / w_n`` used for all repeaters (kept constant
        across sizes, per Section III-E).
    wire_layers:
        Mapping from layer name to its geometry; must contain at least a
        ``"global"`` layer.
    row_height:
        Standard-cell row height in meters (for the predictive area model).
    contact_pitch:
        Contacted poly pitch in meters (for the predictive area model).
    clock_frequency:
        Nominal system clock in Hz, used by the NoC experiments.
    min_nmos_width:
        nMOS width of a unit-size (X1) inverter, in meters.
    calibrated:
        True when the wire parameters come from calibrated/industry data.
        The "original COSI-OCC" model of Table III draws its inputs from
        uncalibrated predictive data; :meth:`uncalibrated_variant`
        produces that optimistic view.
    """

    name: str
    feature_size: float
    vdd: float
    nmos: DeviceParameters
    pmos: DeviceParameters
    pn_ratio: float
    wire_layers: Dict[str, WireLayerGeometry] = field(default_factory=dict)
    row_height: float = 0.0
    contact_pitch: float = 0.0
    clock_frequency: float = 1e9
    min_nmos_width: float = 0.0
    calibrated: bool = True

    def __post_init__(self) -> None:
        if "global" not in self.wire_layers:
            raise ValueError("technology must define a 'global' wire layer")
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.pn_ratio <= 0:
            raise ValueError("pn_ratio must be positive")
        if self.min_nmos_width <= 0:
            raise ValueError("min_nmos_width must be positive")
        if not self.nmos.is_nmos or self.pmos.is_nmos:
            raise ValueError("nmos/pmos flavours are swapped")

    # -- convenience ---------------------------------------------------

    @property
    def global_layer(self) -> WireLayerGeometry:
        """The global wiring layer used for long interconnects."""
        return self.wire_layers["global"]

    def inverter_widths(self, size: float) -> "tuple[float, float]":
        """(nMOS width, pMOS width) in meters of an inverter of drive
        strength ``size`` (size 1 = minimum inverter)."""
        if size <= 0:
            raise ValueError("size must be positive")
        wn = self.min_nmos_width * size
        return wn, wn * self.pn_ratio

    def clock_period(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_frequency

    def uncalibrated_variant(
        self,
        resistance_optimism: float = 1.0,
        capacitance_optimism: float = 0.7,
    ) -> "TechnologyParameters":
        """An optimistic, PTM-style *uncalibrated* view of this node.

        Table III's "original" COSI-OCC model obtains its technology inputs
        from predictive files that are not calibrated against industry
        libraries; the net effect reported by the paper is optimistic wire
        parasitics.  We model that by shrinking the capacitances (the
        original model also ignores coupling entirely — that part is
        handled in the Bakoglu baseline itself, not here).
        """
        layers = {
            name: dataclasses.replace(
                layer,
                dielectric_constant=(layer.dielectric_constant
                                     * capacitance_optimism),
                barrier_thickness=0.0,
                thickness=layer.thickness * resistance_optimism,
            )
            for name, layer in self.wire_layers.items()
        }
        return dataclasses.replace(
            self, wire_layers=layers, calibrated=False,
            name=f"{self.name}-uncalibrated")


def validate_monotonic_scaling(
    nodes: "list[TechnologyParameters]",
    attribute: str,
    decreasing: bool = True,
) -> Optional[str]:
    """Check that ``attribute`` scales monotonically across ``nodes``.

    Returns ``None`` when the ordering holds, otherwise a human-readable
    description of the first violation.  Used by the node-table self-tests.
    """
    values = [getattr(node, attribute) for node in nodes]
    pairs = zip(values, values[1:])
    for index, (previous, current) in enumerate(pairs):
        ordered = current <= previous if decreasing else current >= previous
        if not ordered:
            direction = "decrease" if decreasing else "increase"
            return (f"{attribute} fails to {direction} from "
                    f"{nodes[index].name} ({previous}) to "
                    f"{nodes[index + 1].name} ({current})")
    return None
