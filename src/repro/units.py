"""Unit conventions and conversion helpers.

The entire library works in SI base units:

* time        — seconds (s)
* resistance  — ohms (Ohm)
* capacitance — farads (F)
* length      — meters (m)
* power       — watts (W)
* voltage     — volts (V)
* current     — amperes (A)
* frequency   — hertz (Hz)

Papers and technology files usually quote picoseconds, femtofarads,
microns, milliwatts and gigahertz.  These helpers make the conversions
explicit at API boundaries so that no function ever has to guess what
unit a bare float is in.

The discipline is machine-readable: :data:`UNIT_SUFFIXES` maps every
identifier suffix the codebase may carry (``length_mm``, ``delay_ps``)
to its dimension and SI factor.  The conversion helpers below are
*generated* from that registry, and ``repro.analysis`` (the ``repro
lint`` static checkers) reads the very same table, so the linter and
the runtime can never disagree about what ``_um`` means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

# ---------------------------------------------------------------------------
# Multiplicative prefixes
# ---------------------------------------------------------------------------

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

KILO = 1e3
MEGA = 1e6
GIGA = 1e9


# ---------------------------------------------------------------------------
# The suffix registry — the single source of truth
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UnitSuffix:
    """One identifier suffix with its dimension and SI conversion.

    ``si_factor`` multiplies a value carrying this suffix into the SI
    base unit of ``dimension`` (so ``x_ps * 1e-12`` is seconds).
    ``words`` are the spellings a docstring may use to annotate the
    unit (``"picoseconds"``, ``"ps"``); the first entry is canonical.
    """

    suffix: str
    dimension: str
    si_factor: float
    words: Tuple[str, ...]


#: SI base-unit name per dimension (for generated docstrings).
SI_BASE_UNITS: Dict[str, str] = {
    "time": "seconds",
    "length": "meters",
    "capacitance": "farads",
    "resistance": "ohms",
    "power": "watts",
    "voltage": "volts",
    "current": "amperes",
    "frequency": "hertz",
    "area": "square meters",
}


def _entries() -> Tuple[UnitSuffix, ...]:
    return (
        # time
        UnitSuffix("ps", "time", PICO, ("picoseconds", "ps")),
        UnitSuffix("ns", "time", NANO, ("nanoseconds", "ns")),
        UnitSuffix("us", "time", MICRO, ("microseconds", "us")),
        UnitSuffix("ms", "time", MILLI, ("milliseconds", "ms")),
        UnitSuffix("s", "time", 1.0, ("seconds", "s")),
        UnitSuffix("seconds", "time", 1.0, ("seconds",)),
        # length
        UnitSuffix("nm", "length", NANO, ("nanometers", "nm")),
        UnitSuffix("um", "length", MICRO,
                   ("microns", "micrometers", "um")),
        UnitSuffix("mm", "length", MILLI, ("millimeters", "mm")),
        UnitSuffix("m", "length", 1.0, ("meters", "m")),
        UnitSuffix("meters", "length", 1.0, ("meters",)),
        # capacitance
        UnitSuffix("ff", "capacitance", FEMTO, ("femtofarads", "fF")),
        UnitSuffix("pf", "capacitance", PICO, ("picofarads", "pF")),
        UnitSuffix("nf", "capacitance", NANO, ("nanofarads", "nF")),
        UnitSuffix("f", "capacitance", 1.0, ("farads", "F")),
        # resistance
        UnitSuffix("kohm", "resistance", KILO, ("kilo-ohms", "kohm")),
        UnitSuffix("ohm", "resistance", 1.0, ("ohms", "ohm")),
        UnitSuffix("ohms", "resistance", 1.0, ("ohms",)),
        # power
        UnitSuffix("nw", "power", NANO, ("nanowatts", "nW")),
        UnitSuffix("uw", "power", MICRO, ("microwatts", "uW")),
        UnitSuffix("mw", "power", MILLI, ("milliwatts", "mW")),
        UnitSuffix("w", "power", 1.0, ("watts", "W")),
        UnitSuffix("watts", "power", 1.0, ("watts",)),
        # voltage
        UnitSuffix("mv", "voltage", MILLI, ("millivolts", "mV")),
        UnitSuffix("v", "voltage", 1.0, ("volts", "V")),
        UnitSuffix("volts", "voltage", 1.0, ("volts",)),
        # frequency
        UnitSuffix("ghz", "frequency", GIGA, ("gigahertz", "GHz")),
        UnitSuffix("mhz", "frequency", MEGA, ("megahertz", "MHz")),
        UnitSuffix("khz", "frequency", KILO, ("kilohertz", "kHz")),
        UnitSuffix("hz", "frequency", 1.0, ("hertz", "Hz")),
    )


#: suffix (lowercase, as it appears after the final underscore of an
#: identifier) → :class:`UnitSuffix`.  ``length_mm`` carries suffix
#: ``mm``; ``delay`` carries none.
UNIT_SUFFIXES: Dict[str, UnitSuffix] = {
    entry.suffix: entry for entry in _entries()
}

#: Docstring words that declare a float deliberately dimensionless.
#: A value documented as a "fraction" or "ratio" satisfies the units
#: discipline without naming an SI unit.
DIMENSIONLESS_WORDS: Tuple[str, ...] = (
    "dimensionless", "unitless", "fraction", "fractional", "ratio",
    "factor",
    "probability", "weight", "count", "multiple", "normalized",
    "percent", "bits", "bits/s", "index", "exponent", "r2", "sigmas",
)


def unit_suffix_of(identifier: str) -> Optional[UnitSuffix]:
    """The unit suffix an identifier carries, if any.

    The suffix is the token after the final underscore, compared
    case-insensitively: ``total_cap_ff`` → the femtofarad entry,
    ``delay`` / ``num_repeaters`` → ``None``.  A bare identifier that
    *is* a suffix (``mm``) does not count — a suffix annotates a base
    name, it is not a name by itself.
    """
    if "_" not in identifier:
        return None
    token = identifier.rsplit("_", 1)[1].lower()
    return UNIT_SUFFIXES.get(token)


# ---------------------------------------------------------------------------
# Generated conversion helpers
# ---------------------------------------------------------------------------


def _to_si(suffix: str, public_name: str) -> Callable[[float], float]:
    """A ``<unit>(value) -> SI`` converter generated from the registry."""
    entry = UNIT_SUFFIXES[suffix]
    factor = entry.si_factor
    base = SI_BASE_UNITS[entry.dimension]

    def convert(value: float) -> float:
        return value * factor

    convert.__name__ = public_name
    convert.__qualname__ = public_name
    convert.__doc__ = f"Convert {entry.words[0]} to {base}."
    return convert


def _from_si(suffix: str, public_name: str) -> Callable[[float], float]:
    """An ``to_<unit>(SI) -> unit`` converter generated from the registry."""
    entry = UNIT_SUFFIXES[suffix]
    factor = entry.si_factor
    base = SI_BASE_UNITS[entry.dimension]

    def convert(value: float) -> float:
        return value / factor

    convert.__name__ = public_name
    convert.__qualname__ = public_name
    convert.__doc__ = f"Convert {base} to {entry.words[0]}."
    return convert


# To SI -----------------------------------------------------------------------

ps = _to_si("ps", "ps")
ns = _to_si("ns", "ns")
fF = _to_si("ff", "fF")  # noqa: N816 - deliberate unit capitalisation
pF = _to_si("pf", "pF")  # noqa: N816
um = _to_si("um", "um")
nm = _to_si("nm", "nm")
mm = _to_si("mm", "mm")
ghz = _to_si("ghz", "ghz")
mhz = _to_si("mhz", "mhz")
mw = _to_si("mw", "mw")
uw = _to_si("uw", "uw")
nw = _to_si("nw", "nw")
kohm = _to_si("kohm", "kohm")

# From SI (for report printing) ----------------------------------------------

to_ps = _from_si("ps", "to_ps")
to_ns = _from_si("ns", "to_ns")
to_fF = _from_si("ff", "to_fF")  # noqa: N816
to_um = _from_si("um", "to_um")
to_mm = _from_si("mm", "to_mm")
to_mw = _from_si("mw", "to_mw")
to_uw = _from_si("uw", "to_uw")
to_ghz = _from_si("ghz", "to_ghz")


# Physical constants ---------------------------------------------------------

#: Vacuum permittivity in F/m.
EPSILON_0 = 8.854187817e-12

#: Boltzmann constant in J/K.
BOLTZMANN = 1.380649e-23

#: Elementary charge in C.
ELEMENTARY_CHARGE = 1.602176634e-19

#: Thermal voltage kT/q at 300 K, in volts.
THERMAL_VOLTAGE_300K = BOLTZMANN * 300.0 / ELEMENTARY_CHARGE

#: Bulk resistivity of copper at room temperature, in ohm-meters.
COPPER_BULK_RESISTIVITY = 1.9e-8

#: Electron mean free path in copper at room temperature, in meters.
COPPER_MEAN_FREE_PATH = 39e-9
