"""Unit conventions and conversion helpers.

The entire library works in SI base units:

* time        — seconds (s)
* resistance  — ohms (Ohm)
* capacitance — farads (F)
* length      — meters (m)
* power       — watts (W)
* voltage     — volts (V)
* current     — amperes (A)
* frequency   — hertz (Hz)

Papers and technology files usually quote picoseconds, femtofarads,
microns, milliwatts and gigahertz.  These helpers make the conversions
explicit at API boundaries so that no function ever has to guess what
unit a bare float is in.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Multiplicative prefixes
# ---------------------------------------------------------------------------

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

KILO = 1e3
MEGA = 1e6
GIGA = 1e9


# ---------------------------------------------------------------------------
# To SI
# ---------------------------------------------------------------------------

def ps(value: float) -> float:
    """Convert picoseconds to seconds."""
    return value * PICO


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANO


def fF(value: float) -> float:  # noqa: N802 - deliberate unit capitalisation
    """Convert femtofarads to farads."""
    return value * FEMTO


def pF(value: float) -> float:  # noqa: N802
    """Convert picofarads to farads."""
    return value * PICO


def um(value: float) -> float:
    """Convert microns to meters."""
    return value * MICRO


def nm(value: float) -> float:
    """Convert nanometers to meters."""
    return value * NANO


def mm(value: float) -> float:
    """Convert millimeters to meters."""
    return value * MILLI


def ghz(value: float) -> float:
    """Convert gigahertz to hertz."""
    return value * GIGA


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * MEGA


def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * MILLI


def uw(value: float) -> float:
    """Convert microwatts to watts."""
    return value * MICRO


def nw(value: float) -> float:
    """Convert nanowatts to watts."""
    return value * NANO


def kohm(value: float) -> float:
    """Convert kilo-ohms to ohms."""
    return value * KILO


# ---------------------------------------------------------------------------
# From SI (for report printing)
# ---------------------------------------------------------------------------

def to_ps(seconds: float) -> float:
    """Convert seconds to picoseconds."""
    return seconds / PICO


def to_ns(seconds: float) -> float:
    """Convert seconds to nanoseconds."""
    return seconds / NANO


def to_fF(farads: float) -> float:  # noqa: N802
    """Convert farads to femtofarads."""
    return farads / FEMTO


def to_um(meters: float) -> float:
    """Convert meters to microns."""
    return meters / MICRO


def to_mm(meters: float) -> float:
    """Convert meters to millimeters."""
    return meters / MILLI


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts."""
    return watts / MILLI


def to_uw(watts: float) -> float:
    """Convert watts to microwatts."""
    return watts / MICRO


def to_ghz(hertz: float) -> float:
    """Convert hertz to gigahertz."""
    return hertz / GIGA


# Physical constants ---------------------------------------------------------

#: Vacuum permittivity in F/m.
EPSILON_0 = 8.854187817e-12

#: Boltzmann constant in J/K.
BOLTZMANN = 1.380649e-23

#: Elementary charge in C.
ELEMENTARY_CHARGE = 1.602176634e-19

#: Thermal voltage kT/q at 300 K, in volts.
THERMAL_VOLTAGE_300K = BOLTZMANN * 300.0 / ELEMENTARY_CHARGE

#: Bulk resistivity of copper at room temperature, in ohm-meters.
COPPER_BULK_RESISTIVITY = 1.9e-8

#: Electron mean free path in copper at room temperature, in meters.
COPPER_MEAN_FREE_PATH = 39e-9
