"""Scalar trilinear interpolation over a characterization grid.

This is the scalar mirror of the batched lane in
:mod:`repro.kernels.lut` — same bracketing, same lerp form, same
reduction order (count axis first, then length, then size), so a
scalar lookup and a one-lane batched lookup agree bit-for-bit.  The
pairing is declared in :mod:`repro.kernels.parity` and checked by the
``kernel-parity`` lint rule.

Queries are *clamped* to the grid: callers that must not serve
clamped answers (the LUT model's closed-form fallback) check
:meth:`repro.luts.grid.GridSpec.covers` first.  Tables are nested
tuples ``table[size_index][length_index][count_index]`` of floats —
the scalar path stays numpy-free so single lookups cost no array
overhead.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Sequence, Tuple


def bracket(axis: Sequence[float], value: float) -> Tuple[int, float]:
    """(lower index, fraction) of ``value`` on a sorted axis.

    The fraction is clamped to [0, 1], so out-of-range queries pin to
    the nearest edge instead of extrapolating.
    """
    hi = len(axis) - 2
    idx = min(max(bisect_right(axis, value) - 1, 0), hi)
    span = axis[idx + 1] - axis[idx]
    frac = (value - axis[idx]) / span
    return idx, min(max(frac, 0.0), 1.0)


def _lerp(low: float, high: float, frac: float) -> float:
    """Linear interpolation ``low + (high - low) * frac``."""
    return low + (high - low) * frac


def trilinear(
    table: Sequence[Sequence[Sequence[float]]],
    size_axis: Sequence[float],
    length_axis: Sequence[float],
    count_axis: Sequence[float],
    size: float,
    length: float,
    count: float,
) -> float:
    """Trilinear lookup of one ``(size, length, count)`` query.

    Reduces the count axis first, then length, then size — the exact
    order the batched kernel (and its pre-reduced search profile)
    uses, which is what keeps scalar and batched lookups bitwise
    identical.
    """
    i, fs = bracket(size_axis, size)
    j, fl = bracket(length_axis, length)
    k, fc = bracket(count_axis, count)
    i1 = i + 1
    j1 = j + 1
    k1 = k + 1
    c00 = _lerp(table[i][j][k], table[i][j][k1], fc)
    c01 = _lerp(table[i][j1][k], table[i][j1][k1], fc)
    c10 = _lerp(table[i1][j][k], table[i1][j][k1], fc)
    c11 = _lerp(table[i1][j1][k], table[i1][j1][k1], fc)
    c0 = _lerp(c00, c01, fl)
    c1 = _lerp(c10, c11, fl)
    return _lerp(c0, c1, fs)
