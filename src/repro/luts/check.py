"""Drift-tracked recalibration for committed LUT artifacts.

``repro luts check`` answers "are the committed tables still what the
calibrated model produces?": it rebuilds every table from the current
model (no midpoint validation pass — the committed artifact already
carries its validated contract) and diffs the rebuild against the
artifact, reporting max and mean relative drift per table.  The
builder is deterministic, so a matching calibration drifts by exactly
zero; any drift at all means the calibration, the technology
parameters, or the builder arithmetic moved underneath the artifact,
and drift past the threshold exits the CLI nonzero — the recal
signal.  The report also lands in the run manifest as the
``lut_drift`` block (:func:`repro.runtime.manifest.record_block`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.luts.artifact import LUTArtifact, TABLE_NAMES
from repro.luts.build import build_tables
from repro.runtime.cache import fingerprint
from repro.runtime.metrics import METRICS
from repro.runtime.trace import span

#: Default relative-drift gate: rebuilt tables must match the
#: committed artifact to well under bit-noise scale, because the
#: builder is deterministic — any real drift signals recalibration.
DEFAULT_DRIFT_THRESHOLD = 1e-9


@dataclass(frozen=True)
class TableDrift:
    """Drift of one table: relative to the table's own scale, so
    near-zero entries of sensitivity tables cannot manufacture
    infinite relative errors."""

    name: str
    max_rel: float
    mean_rel: float


@dataclass(frozen=True)
class DriftReport:
    """Outcome of one ``repro luts check`` run."""

    node: str
    artifact_hash: str
    calibration_hash: str
    calibration_matches: bool
    threshold: float
    tables: Tuple[TableDrift, ...]

    @property
    def max_drift(self) -> float:
        """Worst relative drift across every table."""
        return max(entry.max_rel for entry in self.tables)

    @property
    def within_threshold(self) -> bool:
        """True when the artifact still matches the model."""
        return self.calibration_matches \
            and self.max_drift <= self.threshold

    def manifest_block(self) -> Dict[str, Any]:
        """The ``lut_drift`` manifest block."""
        return {
            "node": self.node,
            "artifact": self.artifact_hash,
            "calibration_hash": self.calibration_hash,
            "calibration_matches": self.calibration_matches,
            "threshold": self.threshold,
            "max_drift": self.max_drift,
            "within_threshold": self.within_threshold,
            "tables": {entry.name: {"max_rel": entry.max_rel,
                                    "mean_rel": entry.mean_rel}
                       for entry in self.tables},
        }

    def format(self) -> str:
        lines = [f"LUT drift check — node {self.node}, artifact "
                 f"{self.artifact_hash[:12]}"]
        lines.append(
            f"  calibration: "
            f"{'match' if self.calibration_matches else 'MISMATCH'} "
            f"({self.calibration_hash[:12]})")
        for entry in self.tables:
            lines.append(f"  {entry.name:<13} max {entry.max_rel:.3e}"
                         f"  mean {entry.mean_rel:.3e}")
        verdict = ("within threshold" if self.within_threshold
                   else "DRIFT EXCEEDS THRESHOLD — rebuild the "
                        "artifact (repro luts build)")
        lines.append(f"  max drift {self.max_drift:.3e} vs threshold "
                     f"{self.threshold:.1e}: {verdict}")
        return "\n".join(lines)


def _table_drift(name: str, old: np.ndarray,
                 new: np.ndarray) -> TableDrift:
    """Relative drift of one table, floored at the table's scale."""
    scale = float(np.max(np.abs(old)))
    if scale == 0.0:
        scale = float(np.max(np.abs(new)))
    if scale == 0.0:
        return TableDrift(name=name, max_rel=0.0, mean_rel=0.0)
    denominator = np.maximum(np.abs(old), 1e-9 * scale)
    rel = np.abs(new - old) / denominator
    return TableDrift(name=name, max_rel=float(np.max(rel)),
                      mean_rel=float(np.mean(rel)))


def check_drift(model, artifact: LUTArtifact,
                workers: Optional[int] = None,
                threshold: float = DEFAULT_DRIFT_THRESHOLD
                ) -> DriftReport:
    """Rebuild ``artifact``'s tables from ``model`` and diff them.

    Uses the artifact's own grid spec, so the comparison is
    point-for-point; the rebuild skips the midpoint validation pass
    (the committed artifact's contract already covers serving).
    """
    METRICS.count("luts.drift_checks")
    with span("luts.drift_check", node=artifact.node,
              points=artifact.spec.points):
        rebuilt = build_tables(model, artifact.spec, workers=workers)
        tables = tuple(
            _table_drift(name, artifact.tables[name], rebuilt[name])
            for name in TABLE_NAMES)
    return DriftReport(
        node=artifact.node,
        artifact_hash=artifact.content_hash,
        calibration_hash=fingerprint(model),
        calibration_matches=(fingerprint(model)
                             == artifact.calibration_hash),
        threshold=threshold,
        tables=tables,
    )
