"""The LUT-served interconnect model (drop-in for the closed form).

:class:`LUTInterconnectModel` wraps a calibrated
:class:`repro.models.interconnect.BufferedInterconnectModel` plus one
built artifact and answers the same ``evaluate`` API: delay and output
slew interpolate trilinearly from the tables — in log-value space over
log size/length coordinates (see ``repro.luts.artifact.LOG_TABLES``),
which turns the closed form's power-law behavior into near-linear
segments — while power and area use the exact closed forms (they are
O(1) — tabulating them would only add error).  Anything the tables do not cover — an explicit receiver cap,
a different input slew, a query outside the gridded region — falls
back to the wrapped closed form, counted under ``luts.fallback``, so
the LUT tier can never produce an answer the closed form would not.

The wrapper refuses to bind an artifact whose calibration hash or
model class does not match the base model: a recalibrated node must
rebuild its tables (``repro luts check`` tracks the drift), never
serve stale ones.

For the Monte-Carlo first-order lane, :meth:`mc_response` returns the
tabulated nominal delay of the extraction-style line plus a per-stage
sensitivity matrix; :func:`first_order_line_delay` is the scalar
mirror of the batched :func:`repro.kernels.lut.line_delay_first_order`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from repro.luts.artifact import LUTArtifact
from repro.luts.interp import trilinear
from repro.models.area import repeater_area, wire_area
from repro.models.interconnect import InterconnectEstimate
from repro.models.power import dynamic_power, repeater_leakage_power
from repro.models.wire import switched_wire_capacitance
from repro.runtime.cache import fingerprint
from repro.runtime.metrics import METRICS


def first_order_line_delay(nominal: float,
                           weights: "np.ndarray",
                           factors: "np.ndarray") -> float:
    """One first-order delay (s): nominal plus the inner product of
    ``(factors - 1)`` with the per-stage sensitivity ``weights``.

    Scalar mirror of the batched
    :func:`repro.kernels.lut.line_delay_first_order` (one factor row
    here, many rows there); the pairing is registered in
    :mod:`repro.kernels.parity`.
    """
    response = math.fsum((value - 1.0) * weight
                         for row, weight_row in zip(factors, weights)
                         for value, weight in zip(row, weight_row))
    return nominal + response


class LUTInterconnectModel:
    """LUT-served stand-in for ``BufferedInterconnectModel``.

    API-compatible with the closed form wherever the artifact's grid
    covers the query; everywhere else it *is* the closed form (the
    wrapped base model answers, and ``luts.fallback`` counts it).
    The max interpolation error of served answers is the artifact's
    validated contract (``artifact.spec.max_rel_error``, measured at
    build time as ``artifact.measured_rel_error``).
    """

    def __init__(self, base, artifact: LUTArtifact) -> None:
        if artifact.model_class != type(base).__name__:
            raise ValueError(
                f"artifact characterizes {artifact.model_class}, got "
                f"a {type(base).__name__}")
        calibration_hash = fingerprint(base)
        if artifact.calibration_hash != calibration_hash:
            raise ValueError(
                "artifact calibration hash "
                f"{artifact.calibration_hash} does not match the "
                f"model ({calibration_hash}); the node was "
                "recalibrated — rebuild the tables (repro luts "
                "build) or run the drift check (repro luts check)")
        self.base = base
        self.artifact = artifact
        spec = artifact.spec
        # Interpolation coordinates: log size, log length, linear
        # count (matching repro.luts.artifact.LOG_TABLES — counts are
        # always exact grid hits).  Scalar queries log through
        # float(np.log(...)) so scalar and batched lanes stay bitwise
        # identical (np.log agrees elementwise with its vectorized
        # form; math.exp does not agree with np.exp, so the scalar
        # path never uses math.*).
        log_sizes = np.log(np.asarray(spec.sizes, dtype=float))
        log_lengths = np.log(np.asarray(spec.lengths, dtype=float))
        self._count_axis = tuple(float(c) for c in spec.counts)
        self._axis_arrays = (
            log_sizes,
            log_lengths,
            np.asarray(self._count_axis, dtype=float),
        )
        self._log_size_axis = tuple(log_sizes.tolist())
        self._log_length_axis = tuple(log_lengths.tolist())

    # -- closed-form delegation -----------------------------------------

    @property
    def tech(self):
        return self.base.tech

    @property
    def calibration(self):
        return self.base.calibration

    @property
    def config(self):
        return self.base.config

    @property
    def activity_factor(self) -> float:
        return self.base.activity_factor

    def repeater_model(self):
        return self.base.repeater_model()

    def stage_delay(self, size, input_slew, segment_length, next_cap,
                    rising_output):
        return self.base.stage_delay(size, input_slew, segment_length,
                                     next_cap, rising_output)

    def staggered(self):
        """Staggered insertion changes the wire configuration, which
        the tables do not cover — return the closed form."""
        return self.base.staggered()

    # -- identity --------------------------------------------------------

    def cache_key(self) -> Dict[str, object]:
        """What disk-cache keys should fingerprint for this model:
        the base model *plus* the artifact content hash, so a rebuilt
        grid (or retuned contract) invalidates cached designs."""
        return {
            "kind": "lut-model",
            "base": self.base,
            "artifact": self.artifact.content_hash,
        }

    def axes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(log size, log length, count) interpolation-coordinate
        axis arrays for the batched lane — pair them with the
        artifact's ``interp_table`` serving forms and log-transformed
        size/length queries."""
        return self._axis_arrays

    # -- evaluation ------------------------------------------------------

    def serves(self, length: float, num_repeaters: int,
               repeater_size: float, input_slew: float,
               receiver_cap: Optional[float] = None) -> bool:
        """True when the tables cover this query (no fallback): the
        characterized input slew and receiver, a query inside the
        gridded region, and every corner of the enclosing cell marked
        valid (the interpolated validity mask of such a cell is
        exactly 1.0)."""
        spec = self.artifact.spec
        if receiver_cap is not None \
                or input_slew != spec.input_slew \
                or not spec.covers(repeater_size, length,
                                   num_repeaters):
            return False
        return trilinear(self.artifact.scalar_interp_table("valid"),
                         self._log_size_axis, self._log_length_axis,
                         self._count_axis,
                         float(np.log(repeater_size)),
                         float(np.log(length)),
                         num_repeaters) == 1.0

    def evaluate(
        self,
        length: float,
        num_repeaters: int,
        repeater_size: float,
        input_slew: float,
        bus_width: int = 1,
        receiver_cap: Optional[float] = None,
    ) -> InterconnectEstimate:
        """LUT-served :meth:`BufferedInterconnectModel.evaluate`.

        Served answers carry the artifact's interpolation-error
        contract on delay and output slew; powers and areas are
        exact.  Uncovered queries delegate to the closed form.
        """
        if not self.serves(length, num_repeaters, repeater_size,
                           input_slew, receiver_cap):
            METRICS.count("luts.fallback")
            return self.base.evaluate(
                length, num_repeaters, repeater_size, input_slew,
                bus_width=bus_width, receiver_cap=receiver_cap)
        METRICS.count("luts.lookups")
        with METRICS.observed("lut.lookup_seconds"):
            return self._lookup_estimate(length, num_repeaters,
                                         repeater_size, input_slew,
                                         bus_width)

    def _lookup_estimate(self, length: float, num_repeaters: int,
                         repeater_size: float, input_slew: float,
                         bus_width: int = 1) -> InterconnectEstimate:
        """The served path: tables for timing, closed forms for the
        rest.  Scalar side of the ``lut-line-evaluate`` parity pair —
        its arithmetic must mirror
        :func:`repro.kernels.lut.evaluate_line_lut`."""
        artifact = self.artifact
        log_size = float(np.log(repeater_size))
        log_length = float(np.log(length))
        delay = float(np.exp(trilinear(
            artifact.scalar_interp_table("delay"),
            self._log_size_axis, self._log_length_axis,
            self._count_axis, log_size, log_length, num_repeaters)))
        slew = float(np.exp(trilinear(
            artifact.scalar_interp_table("output_slew"),
            self._log_size_axis, self._log_length_axis,
            self._count_axis, log_size, log_length, num_repeaters)))
        repeater = self.base.repeater_model()
        input_cap = repeater.input_capacitance(repeater_size)
        switched = (switched_wire_capacitance(self.config, length)
                    + num_repeaters * input_cap)
        p_dynamic = bus_width * dynamic_power(
            switched, self.tech.vdd, self.tech.clock_frequency,
            self.activity_factor)
        p_leak = bus_width * num_repeaters * repeater_leakage_power(
            self.tech, self.calibration, repeater_size)
        a_repeaters = bus_width * num_repeaters * repeater_area(
            self.tech, self.calibration, repeater_size)
        a_wire = wire_area(self.config, length, bus_width)
        return InterconnectEstimate(
            delay=delay,
            output_slew=slew,
            stage_delays=self._stage_breakdown(delay, num_repeaters),
            dynamic_power=p_dynamic,
            leakage_power=p_leak,
            repeater_area=a_repeaters,
            wire_area=a_wire,
            num_repeaters=num_repeaters,
            repeater_size=repeater_size,
            length=length,
            bus_width=bus_width,
        )

    @staticmethod
    def _stage_breakdown(delay: float, num_repeaters: int
                         ) -> Tuple[float, ...]:
        """Tables store line totals, not per-stage terms; serve the
        uniform split (stage delays of a long uniform chain are equal
        to within slew-convergence effects)."""
        return (delay / num_repeaters,) * num_repeaters

    # -- Monte-Carlo first-order lane ------------------------------------

    def mc_response(self, line, input_slew: float
                    ) -> "Optional[Tuple[float, np.ndarray]]":
        """(nominal delay, per-stage sensitivity weights) of an
        extraction-style line, or ``None`` when the tables cannot
        serve it.

        The weights are a ``(stages, 4)`` matrix in the factor order
        of :mod:`repro.kernels.variation` (nMOS drive, nMOS vth, pMOS
        drive, pMOS vth): the tabulated uniform-shift sensitivity of
        each factor, split evenly over the stages that factor drives
        (rising stages pull from the pMOS columns, falling stages
        from the nMOS columns, exactly as the scalar chain assigns
        them).  Serving requires the line to match the
        characterization testbench: same technology and wire
        configuration, uniform sizing, the extraction-style same-size
        c_gate receiver, the characterized input slew, and in-grid
        geometry.
        """
        spec = self.artifact.spec
        if input_slew != spec.input_slew:
            return None
        if line.tech != self.tech or line.config != self.config:
            return None
        sizes = {stage.driver_size for stage in line.stages}
        if len(sizes) != 1:
            return None
        size = line.stages[0].driver_size
        count = len(line.stages)
        if not spec.covers(size, line.length, count):
            return None
        wn, wp = self.tech.inverter_widths(size)
        expected_receiver = (self.tech.nmos.c_gate * wn
                             + self.tech.pmos.c_gate * wp)
        if line.receiver_cap != expected_receiver:
            return None

        query = (self._log_size_axis, self._log_length_axis,
                 self._count_axis, float(np.log(size)),
                 float(np.log(line.length)), count)
        if trilinear(self.artifact.scalar_interp_table("valid"),
                     *query) != 1.0:
            return None
        nominal = float(np.exp(trilinear(
            self.artifact.scalar_interp_table("mc_delay"), *query)))
        sens = {name: trilinear(
                    self.artifact.scalar_interp_table(f"sens_{name}"),
                    *query)
                for name in ("n_drive", "n_vth", "p_drive", "p_vth")}

        rising = True
        inverting = self.calibration.kind.inverting
        rising_stages = []
        for _ in range(count):
            rising_stages.append(rising)
            if inverting:
                rising = not rising
        num_rising = sum(rising_stages)
        num_falling = count - num_rising
        weights = np.zeros((count, 4))
        for stage, is_rising in enumerate(rising_stages):
            if is_rising:
                weights[stage, 2] = sens["p_drive"] / num_rising
                weights[stage, 3] = sens["p_vth"] / num_rising
            else:
                weights[stage, 0] = sens["n_drive"] / num_falling
                weights[stage, 1] = sens["n_vth"] / num_falling
        return nominal, weights


def serve(base, artifact: Optional[LUTArtifact]):
    """LUT-served view of ``base`` — or ``base`` itself when no
    artifact is available (the load helpers already counted the
    ``faults.lut_fallback``)."""
    if artifact is None:
        return base
    return LUTInterconnectModel(base, artifact)
