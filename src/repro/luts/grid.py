"""Grid specification for the characterization LUT tier.

A :class:`GridSpec` pins down everything that shapes a table: the
three axes (repeater size, wire length in meters, repeater count), the
input slew the tables were characterized at (seconds), the finite-
difference step of the sensitivity tables, and the interpolation-error
contract the builder must validate against the closed form.

The count axis is always a contiguous integer range, so every count a
search probes inside the range is an *exact* grid hit — only size and
length are genuinely interpolated.  Size and length axes are strictly
increasing floats with at least two points each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.units import mm, ps

#: Relative interpolation error the default grid must stay under,
#: validated at build time against the closed form at cell midpoints.
#: The builder *guarantees* the contract by accuracy-gating the
#: validity mask (cells whose midpoint misses it are never served);
#: the contract therefore trades coverage, not honesty — tighter
#: contracts push more of the grid back onto the closed form.
DEFAULT_ERROR_CONTRACT = 2e-2

#: Looser contract for the coarse (CI smoke) grid.
COARSE_ERROR_CONTRACT = 1e-1

#: Finite-difference step (in factor units) for the sensitivity
#: tables: central differences at ``1 +/- step``.
DEFAULT_SENSITIVITY_STEP = 0.05


def _geometric(low: float, high: float, points: int) -> Tuple[float, ...]:
    """A strictly increasing geometric axis from low to high."""
    ratio = (high / low) ** (1.0 / (points - 1))
    values = [low * ratio ** index for index in range(points - 1)]
    values.append(high)
    return tuple(values)


def _two_band(low: float, knee: float, high: float,
              low_points: int, high_points: int) -> Tuple[float, ...]:
    """Two geometric bands sharing the knee point: a dense band from
    ``low`` to ``knee`` (where the characterized surfaces curve
    hardest — minimum-size repeaters) and a regular band above."""
    return (_geometric(low, knee, low_points)
            + _geometric(knee, high, high_points)[1:])


@dataclass(frozen=True)
class GridSpec:
    """Axes + characterization conditions of one LUT artifact.

    ``sizes`` are dimensionless drive multiples, ``lengths`` meters,
    ``counts`` a contiguous integer range, ``input_slew`` seconds.
    ``max_rel_error`` is the interpolation-error contract the builder
    validates (and refuses to ship past); ``sensitivity_step`` the
    finite-difference step of the variation-sensitivity tables.
    """

    sizes: Tuple[float, ...]
    lengths: Tuple[float, ...]
    counts: Tuple[int, ...]
    input_slew: float
    max_rel_error: float = DEFAULT_ERROR_CONTRACT
    sensitivity_step: float = DEFAULT_SENSITIVITY_STEP

    def __post_init__(self) -> None:
        for name, axis in (("sizes", self.sizes),
                           ("lengths", self.lengths)):
            if len(axis) < 2:
                raise ValueError(f"{name} axis needs >= 2 points")
            if any(b <= a for a, b in zip(axis, axis[1:])):
                raise ValueError(f"{name} axis must be strictly "
                                 "increasing")
            if axis[0] <= 0:
                raise ValueError(f"{name} axis must be positive")
        if not self.counts:
            raise ValueError("counts axis must not be empty")
        if self.counts[0] < 1:
            raise ValueError("counts must start at >= 1")
        expected = tuple(range(self.counts[0], self.counts[-1] + 1))
        if tuple(self.counts) != expected:
            raise ValueError("counts axis must be a contiguous "
                             "integer range")
        if self.input_slew <= 0:
            raise ValueError("input_slew must be positive (seconds)")
        if not 0 < self.max_rel_error < 1:
            raise ValueError("max_rel_error must lie in (0, 1)")
        if not 0 < self.sensitivity_step < 0.5:
            raise ValueError("sensitivity_step must lie in (0, 0.5)")

    @property
    def shape(self) -> Tuple[int, int, int]:
        """(sizes, lengths, counts) table shape."""
        return (len(self.sizes), len(self.lengths), len(self.counts))

    @property
    def points(self) -> int:
        """Number of grid points per table."""
        return int(math.prod(self.shape))

    def covers(self, size: float, length: float, count: int) -> bool:
        """True when the query lies inside the gridded region (no
        extrapolation; count must be an exact grid member)."""
        return (self.sizes[0] <= size <= self.sizes[-1]
                and self.lengths[0] <= length <= self.lengths[-1]
                and self.counts[0] <= count <= self.counts[-1])

    def to_payload(self) -> dict:
        """JSON-safe form (lengths/slew stay in SI units)."""
        return {
            "sizes": list(self.sizes),
            "lengths": list(self.lengths),
            "counts": [int(c) for c in self.counts],
            "input_slew": self.input_slew,
            "max_rel_error": self.max_rel_error,
            "sensitivity_step": self.sensitivity_step,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "GridSpec":
        return cls(
            sizes=tuple(float(v) for v in payload["sizes"]),
            lengths=tuple(float(v) for v in payload["lengths"]),
            counts=tuple(int(v) for v in payload["counts"]),
            input_slew=float(payload["input_slew"]),
            max_rel_error=float(payload["max_rel_error"]),
            sensitivity_step=float(payload["sensitivity_step"]),
        )


#: The production grid: geometric size axis up to the optimizer's
#: practical cap, lengths spanning the NoC link range, counts covering
#: every candidate the buffering search enumerates below 14 mm.
DEFAULT_GRID = GridSpec(
    sizes=_two_band(1.0, 2.2, 128.0, 10, 16),
    lengths=_geometric(mm(0.1), mm(14.0), 24),
    counts=tuple(range(1, 65)),
    input_slew=ps(100),
    max_rel_error=DEFAULT_ERROR_CONTRACT,
)

#: Coarse grid for CI smoke and unit tests: same coverage, far fewer
#: points, looser contract.
COARSE_GRID = GridSpec(
    sizes=_geometric(1.0, 128.0, 8),
    lengths=_geometric(mm(0.1), mm(14.0), 10),
    counts=tuple(range(1, 33)),
    input_slew=ps(100),
    max_rel_error=COARSE_ERROR_CONTRACT,
)
