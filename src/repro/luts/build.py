"""Parallel builder for characterization LUT artifacts.

``repro luts build`` grids the calibrated closed-form model over
(repeater size, wire length, repeater count).  Work is sharded one
repeater count per task through
:func:`repro.runtime.parallel.parallel_map` — shard cost grows with
the stage count, so counts are natural shards — and each shard
produces one ``(sizes, lengths)`` slice of every table:

* ``delay`` / ``output_slew`` — the design tables, one scalar
  :meth:`~repro.models.interconnect.BufferedInterconnectModel.evaluate`
  per grid point (grid points therefore reproduce the closed form
  *exactly*, which the round-trip tests pin);
* ``mc_delay`` — the nominal delay of the extraction-style line
  (c_gate same-size receiver, as
  :func:`repro.signoff.extraction.extract_buffered_line` builds it),
  evaluated with the batched stage chain;
* ``sens_*`` — central-difference sensitivities of ``mc_delay`` to a
  *uniform* shift of each variation factor, feeding the Monte-Carlo
  first-order lane (:func:`repro.kernels.lut.line_delay_first_order`).

Each shard also *accuracy-gates* its slice of the ``valid`` mask: it
probes every ``(size, length)`` cell midpoint through the exact
serving transform and invalidates cells whose worst table error
exceeds the grid's contract, so those cells fall back to the closed
form — the contract is guaranteed by construction, not merely
measured.  After assembly the builder re-probes every servable
midpoint and records the worst relative interpolation error in the
header; an error above the contract still fails the build outright.
Build wall time lands in the ``luts.build_seconds`` histogram.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kernels import repeater as krepeater
from repro.kernels import wire as kwire
from repro.kernels.lut import interpolate_trilinear
from repro.kernels.variation import effective_widths
from repro.luts.artifact import LOG_TABLES, LUTArtifact, TABLE_NAMES
from repro.luts.grid import GridSpec
from repro.runtime.metrics import METRICS
from repro.runtime.parallel import parallel_map
from repro.runtime.trace import span

#: Uniform-factor columns, in the factor-matrix column order of
#: :mod:`repro.kernels.variation` (n_drive, n_vth, p_drive, p_vth).
_FACTOR_NAMES = ("n_drive", "n_vth", "p_drive", "p_vth")

#: Output-slew sanity cap, as a multiple of the characterization input
#: slew.  The calibrated closed form extrapolates nonphysically in
#: degenerate corners of the rectangle (many minimum-size repeaters on
#: a very short wire: the slew chain diverges and delays go negative);
#: grid points past this cap — or with non-positive delays — are
#: marked invalid in the ``valid`` mask and never served.
SLEW_VALIDITY_MULTIPLE = 5.0


def _receiver_caps(model, sizes: np.ndarray) -> np.ndarray:
    """Extraction-style same-size receiver capacitance per lane (F),
    as :func:`repro.signoff.extraction.extract_buffered_line` computes
    it for the Monte-Carlo testbench geometry."""
    wn, wp = krepeater.inverter_widths(model.tech, sizes)
    return model.tech.nmos.c_gate * wn + model.tech.pmos.c_gate * wp


def _perturbed_line_batch(
    model,
    lengths: np.ndarray,
    count: int,
    sizes: np.ndarray,
    input_slew: float,
    factors: Tuple[float, float, float, float],
) -> np.ndarray:
    """Line delay (s) per lane under a uniform factor perturbation.

    Mirrors the scalar variation chain
    (:func:`repro.signoff.variation._model_sample_line_delay`) with
    one ``(n_drive, n_vth, p_drive, p_vth)`` tuple applied to every
    stage: next-stage loads use the calibrated gamma input cap, the
    receiver uses the extraction-style c_gate cap, and widths map
    through the alpha-power effective-width law.
    """
    n_drive, n_vth, p_drive, p_vth = factors
    tech = model.tech
    calibration = model.calibration
    coeffs = kwire.WireCoefficients.from_config(model.config)
    segment = lengths / count
    input_cap = krepeater.input_capacitance(tech, calibration, sizes)
    receiver = _receiver_caps(model, sizes)
    wn, wp = krepeater.inverter_widths(tech, sizes)
    wn_eff = effective_widths(tech.nmos, wn, tech.vdd,
                              np.asarray(n_drive),
                              np.asarray(n_vth))
    wp_eff = effective_widths(tech.pmos, wp, tech.vdd,
                              np.asarray(p_drive),
                              np.asarray(p_vth))
    total = np.zeros(lengths.shape)
    slew = np.broadcast_to(float(input_slew), lengths.shape).copy()
    rising = True
    inverting = calibration.kind.inverting
    for stage in range(count):
        next_cap = input_cap if stage + 1 < count else receiver
        direction = calibration.direction(rising)
        wr = wp_eff if rising else wn_eff
        load = kwire.effective_load_capacitance(coeffs, segment,
                                                next_cap)
        d_repeater = krepeater.delay(direction, slew, wr, load)
        d_wire = kwire.wire_delay(coeffs, segment, next_cap)
        slew = krepeater.output_slew(direction, load, slew, wr)
        total = total + (d_repeater + d_wire)
        if inverting:
            rising = not rising
    return total


def _plane_serving(plane: np.ndarray, log_sizes: np.ndarray,
                   log_lengths: np.ndarray, log_size_lanes: np.ndarray,
                   log_length_lanes: np.ndarray) -> np.ndarray:
    """One count plane served exactly as the trilinear lane serves it
    at an exact count hit (the count lerp carries zero weight, so
    stacking the plane twice reuses :func:`interpolate_trilinear`
    verbatim — bitwise the production lookup)."""
    table = np.stack([plane, plane], axis=-1)
    count_axis = np.asarray([0.0, 1.0])
    counts = np.zeros(log_size_lanes.shape)
    return interpolate_trilinear(table, log_sizes, log_lengths,
                                 count_axis, log_size_lanes,
                                 log_length_lanes, counts)


def _gate_accuracy(model, slices: Dict[str, np.ndarray],
                   size_axis: np.ndarray, length_axis: np.ndarray,
                   count: int, input_slew: float,
                   contract: float) -> None:
    """Accuracy-gate one plane's validity mask in place.

    Probes every cell midpoint of the plane through the exact serving
    transform (log-value interpolation, exponentiated back) and
    invalidates cells whose worst table error exceeds the contract —
    those cells fall back to the closed form instead of serving a
    lying answer.  Masked corners never carry weight in still-valid
    cells, so one pass leaves every remaining servable midpoint
    within contract.
    """
    from repro.kernels.line import evaluate_line_batch

    valid = slices["valid"]
    mid_sizes = _midpoints(tuple(size_axis))
    mid_lengths = _midpoints(tuple(length_axis))
    size_lanes = np.repeat(mid_sizes, mid_lengths.size)
    length_lanes = np.tile(mid_lengths, mid_sizes.size)
    log_sizes = np.log(size_axis)
    log_lengths = np.log(length_axis)
    log_size_lanes = np.log(size_lanes)
    log_length_lanes = np.log(length_lanes)

    servable = _plane_serving(valid, log_sizes, log_lengths,
                              log_size_lanes, log_length_lanes) == 1.0
    if not servable.any():
        return
    exact = evaluate_line_batch(model, length_lanes, count,
                                size_lanes, input_slew)
    mc_exact = _perturbed_line_batch(model, length_lanes, count,
                                     size_lanes, input_slew,
                                     (1.0, 1.0, 1.0, 1.0))
    worst = np.zeros(size_lanes.shape)
    for name, reference in (("delay", exact.delay),
                            ("output_slew", exact.output_slew),
                            ("mc_delay", mc_exact)):
        plane = np.log(np.where(valid == 1.0, slices[name], 1.0))
        served = np.exp(_plane_serving(plane, log_sizes, log_lengths,
                                       log_size_lanes,
                                       log_length_lanes))
        with np.errstate(divide="ignore", invalid="ignore"):
            error = np.abs(served - reference) / np.abs(reference)
        worst = np.maximum(worst, np.where(np.isfinite(error),
                                           error, np.inf))
    bad = np.nonzero(servable & (worst > contract))[0]
    if bad.size:
        valid[bad // mid_lengths.size, bad % mid_lengths.size] = 0.0


def _build_shard(task) -> Dict[str, np.ndarray]:
    """One count's ``(sizes, lengths)`` slice of every table.

    ``task`` is ``(model, sizes, lengths, count, input_slew, step,
    contract)`` with plain tuples for the axes so the payload pickles
    cheaply to pool workers.
    """
    model, sizes, lengths, count, input_slew, step, contract = task
    size_axis = np.asarray(sizes, dtype=float)
    length_axis = np.asarray(lengths, dtype=float)
    shape = (size_axis.size, length_axis.size)

    delay = np.empty(shape)
    output_slew = np.empty(shape)
    for i, size in enumerate(sizes):
        for j, length in enumerate(lengths):
            estimate = model.evaluate(length, count, float(size),
                                      input_slew)
            delay[i, j] = estimate.delay
            output_slew[i, j] = estimate.output_slew

    size_lanes = np.repeat(size_axis, length_axis.size)
    length_lanes = np.tile(length_axis, size_axis.size)
    mc_delay = _perturbed_line_batch(
        model, length_lanes, count, size_lanes, input_slew,
        (1.0, 1.0, 1.0, 1.0)).reshape(shape)
    slew_cap = SLEW_VALIDITY_MULTIPLE * input_slew
    valid = ((delay > 0.0) & (output_slew > 0.0)
             & (output_slew <= slew_cap)
             & (mc_delay > 0.0)).astype(float)
    slices: Dict[str, np.ndarray] = {
        "delay": delay,
        "output_slew": output_slew,
        "mc_delay": mc_delay,
        "valid": valid,
    }
    for column, name in enumerate(_FACTOR_NAMES):
        up = [1.0, 1.0, 1.0, 1.0]
        down = [1.0, 1.0, 1.0, 1.0]
        up[column] = 1.0 + step
        down[column] = 1.0 - step
        plus = _perturbed_line_batch(model, length_lanes, count,
                                     size_lanes, input_slew,
                                     tuple(up))
        minus = _perturbed_line_batch(model, length_lanes, count,
                                      size_lanes, input_slew,
                                      tuple(down))
        slices[f"sens_{name}"] = ((plus - minus)
                                  / (2.0 * step)).reshape(shape)
    _gate_accuracy(model, slices, size_axis, length_axis, count,
                   input_slew, contract)
    return slices


def _midpoints(axis: Tuple[float, ...]) -> np.ndarray:
    values = np.asarray(axis, dtype=float)
    return 0.5 * (values[1:] + values[:-1])


def measure_interpolation_error(model, spec: GridSpec,
                                tables: Dict[str, np.ndarray]
                                ) -> float:
    """Worst relative error of the interpolated delay tables against
    the closed form, probed at every *servable* (size, length) cell
    midpoint on every count (counts are exact hits, so midpoints in
    the two float axes are the worst case the grid can serve).
    Midpoints of cells with an invalid corner are skipped — serving
    falls back to the closed form there, so interpolation never
    answers.  The probe runs the exact serving transform: log-value
    tables over log size/length coordinates, exponentiated back."""
    from repro.kernels.line import evaluate_line_batch

    log_size_axis = np.log(np.asarray(spec.sizes, dtype=float))
    log_length_axis = np.log(np.asarray(spec.lengths, dtype=float))
    count_axis = np.asarray(spec.counts, dtype=float)
    serving = {name: np.log(np.where(tables["valid"] == 1.0,
                                     tables[name], 1.0))
               for name in LOG_TABLES}
    mid_sizes = _midpoints(spec.sizes)
    mid_lengths = _midpoints(spec.lengths)
    size_lanes = np.repeat(mid_sizes, mid_lengths.size)
    length_lanes = np.tile(mid_lengths, mid_sizes.size)
    log_size_lanes = np.log(size_lanes)
    log_length_lanes = np.log(length_lanes)
    worst = 0.0
    for count in spec.counts:
        count_lanes = np.full(size_lanes.shape, float(count))
        servable = interpolate_trilinear(
            tables["valid"], log_size_axis, log_length_axis,
            count_axis, log_size_lanes, log_length_lanes,
            count_lanes) == 1.0
        if not servable.any():
            continue
        exact = evaluate_line_batch(model, length_lanes, count,
                                    size_lanes, spec.input_slew)
        for name, reference in (("delay", exact.delay),
                                ("output_slew", exact.output_slew)):
            served = np.exp(interpolate_trilinear(
                serving[name], log_size_axis, log_length_axis,
                count_axis, log_size_lanes, log_length_lanes,
                count_lanes))
            error = (np.abs(served - reference)
                     / np.abs(reference))[servable]
            worst = max(worst, float(np.max(error)))
        mc_exact = _perturbed_line_batch(
            model, length_lanes, count, size_lanes, spec.input_slew,
            (1.0, 1.0, 1.0, 1.0))
        mc_served = np.exp(interpolate_trilinear(
            serving["mc_delay"], log_size_axis, log_length_axis,
            count_axis, log_size_lanes, log_length_lanes,
            count_lanes))
        error = (np.abs(mc_served - mc_exact)
                 / np.abs(mc_exact))[servable]
        worst = max(worst, float(np.max(error)))
    return worst


def build_tables(model, spec: GridSpec,
                 workers: Optional[int] = None
                 ) -> Dict[str, np.ndarray]:
    """All tables of one artifact, sharded over counts."""
    tasks = [(model, spec.sizes, spec.lengths, count,
              spec.input_slew, spec.sensitivity_step,
              spec.max_rel_error)
             for count in spec.counts]
    shards: List[Dict[str, np.ndarray]] = parallel_map(
        _build_shard, tasks, workers=workers, label="luts.build_shard")
    tables: Dict[str, np.ndarray] = {}
    for name in TABLE_NAMES:
        tables[name] = np.stack([shard[name] for shard in shards],
                                axis=-1)
    return tables


def build_artifact(model, node: str, spec: GridSpec,
                   workers: Optional[int] = None,
                   validate: bool = True) -> LUTArtifact:
    """Build one artifact for ``model`` at ``node`` over ``spec``.

    Raises :class:`ValueError` when the measured cell-midpoint
    interpolation error exceeds the grid's contract (``validate=False``
    skips the probe — drift checks rebuild coefficients only and diff
    them against an already-validated artifact).
    """
    from repro.runtime.cache import fingerprint

    METRICS.count("luts.builds")
    METRICS.count("luts.grid_points", spec.points)
    with span("luts.build", node=node, points=spec.points), \
            METRICS.observed("luts.build_seconds"):
        tables = build_tables(model, spec, workers=workers)
        measured = 0.0
        if validate:
            with span("luts.validate"):
                measured = measure_interpolation_error(model, spec,
                                                       tables)
            if measured > spec.max_rel_error:
                raise ValueError(
                    f"grid too coarse: measured interpolation error "
                    f"{measured:.2e} exceeds the contract "
                    f"{spec.max_rel_error:.2e}; densify the size or "
                    f"length axis")
    return LUTArtifact(
        node=node,
        model_class=type(model).__name__,
        calibration_hash=fingerprint(model),
        spec=spec,
        tables=tables,
        measured_rel_error=measured,
    )
