"""Versioned on-disk artifacts for the characterization LUT tier.

An artifact is one set of characterization tables plus a header that
pins down exactly what produced it:

* ``schema`` / ``generator_version`` — the payload layout and the
  builder algorithm version (bump :data:`GENERATOR_VERSION` whenever
  the build arithmetic changes, so stale artifacts are refused);
* ``node`` and ``model_class`` — which technology node and model
  class were gridded;
* ``calibration_hash`` — the :func:`repro.runtime.cache.fingerprint`
  of the full calibrated model, so recalibration invalidates;
* ``grid`` — the :class:`repro.luts.grid.GridSpec` payload;
* ``max_rel_error`` — the error contract, and ``measured_rel_error``
  the worst cell-midpoint error the builder actually observed;
* ``content_hash`` — fingerprint of header-relevant fields plus every
  table, verified on load so truncated or hand-edited artifacts are
  refused.

Artifacts live in ``DiskCache("luts")`` keyed by (node, model,
grid, generator version), and export losslessly to a committable
standalone JSON file (floats round-trip exactly through ``repr``).
Any refused load — corrupt JSON, schema/version mismatch, content-hash
mismatch — counts ``faults.lut_fallback`` and returns ``None`` so the
caller drops back to the closed form instead of serving bad tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.luts.grid import GridSpec
from repro.runtime.cache import DiskCache, fingerprint
from repro.runtime.metrics import METRICS

#: Bump when the artifact payload layout changes incompatibly.
ARTIFACT_SCHEMA = 1

#: Bump when the *builder arithmetic* changes (table semantics, new
#: sensitivity scheme, ...): artifacts from other generator versions
#: are refused on load.
GENERATOR_VERSION = 1

#: Every table an artifact carries, in payload order.  ``delay`` /
#: ``output_slew`` are the design tables (default same-size gamma
#: receiver); ``mc_delay`` and the four ``sens_*`` tables characterize
#: the extraction-style line (c_gate same-size receiver) for the
#: Monte-Carlo first-order lane.  ``valid`` is the serving mask (1.0
#: where the closed form itself is physical — positive delays, a
#: converging slew chain — AND the cell midpoint meets the grid's
#: interpolation-error contract; see ``repro.luts.build``): serving
#: requires every corner of the enclosing cell to be valid; everything
#: else falls back to the closed form, which is how the builder
#: *guarantees* the error contract rather than merely measuring it.
TABLE_NAMES: Tuple[str, ...] = (
    "delay",
    "output_slew",
    "mc_delay",
    "sens_n_drive",
    "sens_n_vth",
    "sens_p_drive",
    "sens_p_vth",
    "valid",
)

#: Tables *served* through log-value interpolation (they are strictly
#: positive wherever valid, and the closed form behaves like a power
#: law in size near the small-size edge — linear in log space, so the
#: error contract survives a committable grid density).  The signed
#: ``sens_*`` tables and the ``valid`` mask interpolate linearly.
#: Coordinates are logged to match: size and length queries bracket on
#: log axes (counts stay linear — they are exact hits).
LOG_TABLES: Tuple[str, ...] = ("delay", "output_slew", "mc_delay")


def _tables_payload(tables: Mapping[str, np.ndarray]) -> Dict[str, Any]:
    return {name: np.asarray(tables[name]).tolist()
            for name in TABLE_NAMES}


@dataclass(frozen=True)
class LUTArtifact:
    """One built characterization artifact (tables + header)."""

    node: str
    model_class: str
    calibration_hash: str
    spec: GridSpec
    tables: Dict[str, np.ndarray]
    measured_rel_error: float
    build_seconds: float = 0.0
    generator_version: int = GENERATOR_VERSION
    #: Cached nested-tuple copies for the scalar interpolation path.
    _scalar_tables: Dict[str, tuple] = field(default_factory=dict,
                                             repr=False, compare=False)
    #: Cached serving-form (log-value) numpy tables.
    _interp_tables: Dict[str, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        missing = [name for name in TABLE_NAMES
                   if name not in self.tables]
        if missing:
            raise ValueError(f"artifact missing tables: {missing}")
        for name in TABLE_NAMES:
            table = np.asarray(self.tables[name], dtype=float)
            if table.shape != self.spec.shape:
                raise ValueError(
                    f"table {name!r} has shape {table.shape}, grid "
                    f"spec says {self.spec.shape}")
            self.tables[name] = table

    # -- identity -------------------------------------------------------

    @property
    def content_hash(self) -> str:
        """Fingerprint of everything that defines this artifact."""
        return fingerprint({
            "schema": ARTIFACT_SCHEMA,
            "generator_version": self.generator_version,
            "node": self.node,
            "model_class": self.model_class,
            "calibration_hash": self.calibration_hash,
            "grid": self.spec.to_payload(),
            "tables": _tables_payload(self.tables),
        })

    def scalar_table(self, name: str) -> tuple:
        """The nested-tuple view of one *raw* table, cached."""
        return self._nested(("raw", name), self.tables[name])

    def interp_table(self, name: str) -> np.ndarray:
        """The serving form of one table, cached: log values for
        :data:`LOG_TABLES` (invalid grid points are pinned to
        ``log(1.0)`` first — they only ever enter a served lookup
        with zero weight, and the pin keeps the log finite), the raw
        values for everything else."""
        if name not in self._interp_tables:
            table = self.tables[name]
            if name in LOG_TABLES:
                table = np.log(np.where(
                    self.tables["valid"] == 1.0, table, 1.0))
            self._interp_tables[name] = table
        return self._interp_tables[name]

    def scalar_interp_table(self, name: str) -> tuple:
        """The nested-tuple view of :meth:`interp_table`, cached."""
        return self._nested(("interp", name), self.interp_table(name))

    def _nested(self, key, array: np.ndarray) -> tuple:
        if key not in self._scalar_tables:
            self._scalar_tables[key] = tuple(
                tuple(tuple(row) for row in plane)
                for plane in array.tolist())
        return self._scalar_tables[key]

    # -- serialization --------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-safe export form, content hash included."""
        return {
            "schema": ARTIFACT_SCHEMA,
            "generator_version": self.generator_version,
            "node": self.node,
            "model_class": self.model_class,
            "calibration_hash": self.calibration_hash,
            "grid": self.spec.to_payload(),
            "max_rel_error": self.spec.max_rel_error,
            "measured_rel_error": self.measured_rel_error,
            "build_seconds": self.build_seconds,
            "content_hash": self.content_hash,
            "tables": _tables_payload(self.tables),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "LUTArtifact":
        """Rebuild from a payload; raises ValueError on any mismatch
        (schema, generator version, content hash, table shapes)."""
        if payload.get("schema") != ARTIFACT_SCHEMA:
            raise ValueError(
                f"artifact schema {payload.get('schema')!r} != "
                f"{ARTIFACT_SCHEMA}")
        if payload.get("generator_version") != GENERATOR_VERSION:
            raise ValueError(
                f"artifact generator version "
                f"{payload.get('generator_version')!r} != "
                f"{GENERATOR_VERSION}")
        spec = GridSpec.from_payload(payload["grid"])
        tables = {name: np.asarray(payload["tables"][name],
                                   dtype=float)
                  for name in TABLE_NAMES}
        artifact = cls(
            node=str(payload["node"]),
            model_class=str(payload["model_class"]),
            calibration_hash=str(payload["calibration_hash"]),
            spec=spec,
            tables=tables,
            measured_rel_error=float(payload["measured_rel_error"]),
            build_seconds=float(payload.get("build_seconds", 0.0)),
            generator_version=int(payload["generator_version"]),
        )
        recorded = payload.get("content_hash")
        if recorded != artifact.content_hash:
            raise ValueError(
                f"artifact content hash mismatch: header says "
                f"{recorded!r}, tables hash to "
                f"{artifact.content_hash!r}")
        return artifact


def cache_key(node: str, base_model: Any, spec: GridSpec
              ) -> Dict[str, Any]:
    """The ``DiskCache("luts")`` key of one artifact slot."""
    return {
        "schema": ARTIFACT_SCHEMA,
        "generator_version": GENERATOR_VERSION,
        "node": node,
        "model": base_model,
        "grid": spec.to_payload(),
    }


def store_artifact(artifact: LUTArtifact, base_model: Any,
                   cache: Optional[DiskCache] = None) -> None:
    """Store an artifact in the LUT cache namespace."""
    if cache is None:
        cache = DiskCache("luts")
    cache.put(cache_key(artifact.node, base_model, artifact.spec),
              artifact.to_payload(), kind="artifact")


def load_artifact(node: str, base_model: Any, spec: GridSpec,
                  cache: Optional[DiskCache] = None
                  ) -> Optional[LUTArtifact]:
    """Load an artifact from the LUT cache namespace.

    Returns ``None`` (counting ``faults.lut_fallback``) when the slot
    is empty or the stored payload does not validate.
    """
    if cache is None:
        cache = DiskCache("luts")
    payload = cache.get(cache_key(node, base_model, spec),
                        kind="artifact")
    if payload is None:
        return None
    return _validated(payload, f"cache slot for node {node!r}")


def save_artifact_file(artifact: LUTArtifact,
                       path: Union[str, Path]) -> Path:
    """Export the committable standalone JSON form."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact.to_payload(), handle, sort_keys=True)
        handle.write("\n")
    return path


def load_artifact_file(path: Union[str, Path]
                       ) -> Optional[LUTArtifact]:
    """Load a committed artifact file.

    Corrupt JSON, schema/generator mismatches and content-hash
    mismatches all count ``faults.lut_fallback`` and return ``None``
    so the caller serves the closed form instead.
    """
    path = Path(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        METRICS.count("faults.lut_fallback")
        return None
    if not isinstance(payload, dict):
        METRICS.count("faults.lut_fallback")
        return None
    return _validated(payload, str(path))


def _validated(payload: Mapping[str, Any], origin: str
               ) -> Optional[LUTArtifact]:
    """Payload -> artifact, or ``None`` + ``faults.lut_fallback``."""
    try:
        return LUTArtifact.from_payload(payload)
    except (KeyError, TypeError, ValueError):
        METRICS.count("faults.lut_fallback")
        return None
