"""Characterization LUT tier: precomputed closed-form tables.

The sizing flow evaluates the same calibrated closed-form expressions
millions of times across buffering searches, Monte-Carlo draws and NoC
synthesis.  This package grids those models once per technology node
over (repeater size, wire length, repeater count), stores the result
as a versioned, content-hashed artifact, and serves hot-path queries
by multilinear interpolation:

* :mod:`repro.luts.grid` — the axes and the interpolation-error
  contract (:class:`GridSpec`);
* :mod:`repro.luts.interp` — the scalar trilinear lookup (the batch
  mirror lives in :mod:`repro.kernels.lut`);
* :mod:`repro.luts.artifact` — the on-disk format: header, content
  hash, :class:`repro.runtime.cache.DiskCache` storage and the
  committable JSON export;
* :mod:`repro.luts.build` — the parallel builder (``repro luts
  build``) with its build-time error validation;
* :mod:`repro.luts.model` — :class:`LUTInterconnectModel`, the
  drop-in, API-compatible stand-in for
  :class:`repro.models.interconnect.BufferedInterconnectModel`;
* :mod:`repro.luts.check` — the drift-tracked recalibration workflow
  (``repro luts check``).
"""

from repro.luts.artifact import (
    ARTIFACT_SCHEMA,
    GENERATOR_VERSION,
    LUTArtifact,
    load_artifact,
    load_artifact_file,
    save_artifact_file,
)
from repro.luts.build import build_artifact
from repro.luts.check import DriftReport, check_drift
from repro.luts.grid import COARSE_GRID, DEFAULT_GRID, GridSpec
from repro.luts.model import (
    LUTInterconnectModel,
    first_order_line_delay,
    serve,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "COARSE_GRID",
    "DEFAULT_GRID",
    "DriftReport",
    "GENERATOR_VERSION",
    "GridSpec",
    "LUTArtifact",
    "LUTInterconnectModel",
    "build_artifact",
    "check_drift",
    "first_order_line_delay",
    "load_artifact",
    "load_artifact_file",
    "save_artifact_file",
    "serve",
]
