"""Power models (Section III-C).

* Leakage: each flavour leaks in one output state, linearly in device
  width — ``p_s = (p_sn + p_sp) / 2`` with
  ``p_sn = e0n + e1n * w_n`` and ``p_sp = e0p + e1p * w_p``.
* Dynamic: the standard ``p_d = af * c_l * vdd^2 * f`` with activity
  factor ``af``, switched load ``c_l``, supply ``vdd`` and clock ``f``.
"""

from __future__ import annotations

from repro.models.calibration import CalibratedTechnology
from repro.tech.parameters import TechnologyParameters


def leakage_power_from_coefficients(
    calibration: CalibratedTechnology,
    wn: float,
    wp: float,
) -> float:
    """Average repeater leakage power in watts.

    ``p_s = (p_sn + p_sp) / 2`` — the two output states are assumed
    equally likely, as in the paper.
    """
    e0n, e1n = calibration.leakage_n
    e0p, e1p = calibration.leakage_p
    p_sn = e0n + e1n * wn
    p_sp = e0p + e1p * wp
    return 0.5 * (p_sn + p_sp)


def repeater_leakage_power(
    tech: TechnologyParameters,
    calibration: CalibratedTechnology,
    size: float,
) -> float:
    """Leakage power (W) of one repeater of the given drive strength."""
    wn, wp = tech.inverter_widths(size)
    return leakage_power_from_coefficients(calibration, wn, wp)


def dynamic_power(
    load_cap: float,
    vdd: float,
    frequency: float,
    activity_factor: float = 0.15,
) -> float:
    """Dynamic switching power ``af * c_l * vdd^2 * f`` in watts.

    ``load_cap`` must be the *switched* capacitance (wire ground +
    once-counted lateral + downstream gate capacitance); the Miller
    amplification used for delay does not apply to average power.
    """
    if not 0.0 <= activity_factor <= 1.0:
        raise ValueError("activity_factor must lie in [0, 1]")
    if load_cap < 0 or vdd <= 0 or frequency <= 0:
        raise ValueError("load_cap, vdd and frequency must be physical")
    return activity_factor * load_cap * vdd * vdd * frequency
