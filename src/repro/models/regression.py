"""Least-squares regression utilities.

The paper derives every model coefficient by linear or quadratic
regression against characterization data (Section III).  These helpers
wrap ``numpy.linalg.lstsq`` with the exact variants needed:

* ordinary linear fit, with or without intercept;
* quadratic fit (for the intrinsic-delay-vs-slew relation);
* inverse-proportional fit ``y = a / x`` with zero intercept (for the
  drive-resistance-vs-size relation);
* general multilinear fit over arbitrary regressor columns (for the
  output-slew model).

Every fit returns the coefficient vector together with the coefficient
of determination, so calibration can assert fit quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class RegressionResult:
    """Fitted coefficients plus goodness of fit."""

    coefficients: Tuple[float, ...]
    r_squared: float

    def __iter__(self):
        return iter(self.coefficients)

    def __getitem__(self, index: int) -> float:
        return self.coefficients[index]


def _r_squared(y: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - np.mean(y)) ** 2))
    if total == 0.0:
        # Constant target: perfect if the prediction matches it to
        # numerical precision.
        scale = max(float(np.sum(y * y)), 1e-300)
        return 1.0 if residual <= 1e-20 * scale else 0.0
    return 1.0 - residual / total


def _solve(design: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Least squares with column equilibration.

    Calibration data mixes columns of wildly different physical scales
    (a constant column of 1 next to squared slews of ~1e-20), which
    pushes the raw normal system far beyond float64 conditioning and
    makes ``lstsq`` silently drop the small columns.  Scaling each
    column to unit norm before solving and unscaling the coefficients
    afterwards keeps every regressor numerically alive.
    """
    norms = np.linalg.norm(design, axis=0)
    norms = np.where(norms == 0.0, 1.0, norms)
    scaled = design / norms
    coefficients, *_ = np.linalg.lstsq(scaled, y, rcond=None)
    return coefficients / norms


def linear_fit(x: Sequence[float], y: Sequence[float],
               intercept: bool = True) -> RegressionResult:
    """Fit ``y = c0 + c1 x`` (or ``y = c1 x`` without intercept).

    Returns coefficients ``(c0, c1)`` — with ``c0 = 0`` fixed when
    ``intercept`` is False so the result shape is uniform.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.size != ys.size:
        raise ValueError("x and y must have equal length")
    if xs.size < (2 if intercept else 1):
        raise ValueError("not enough points for a linear fit")
    if intercept:
        design = np.column_stack([np.ones_like(xs), xs])
        c0, c1 = _solve(design, ys)
    else:
        design = xs.reshape(-1, 1)
        (c1,) = _solve(design, ys)
        c0 = 0.0
    predicted = c0 + c1 * xs
    return RegressionResult((float(c0), float(c1)),
                            _r_squared(ys, predicted))


def quadratic_fit(x: Sequence[float], y: Sequence[float]
                  ) -> RegressionResult:
    """Fit ``y = c0 + c1 x + c2 x^2``; returns ``(c0, c1, c2)``."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.size != ys.size:
        raise ValueError("x and y must have equal length")
    if xs.size < 3:
        raise ValueError("not enough points for a quadratic fit")
    design = np.column_stack([np.ones_like(xs), xs, xs * xs])
    c0, c1, c2 = _solve(design, ys)
    predicted = design @ np.array([c0, c1, c2])
    return RegressionResult((float(c0), float(c1), float(c2)),
                            _r_squared(ys, predicted))


def inverse_fit(x: Sequence[float], y: Sequence[float]
                ) -> RegressionResult:
    """Fit ``y = a / x`` (zero intercept); returns ``(a,)``.

    This is the paper's drive-resistance-vs-repeater-size relation: a
    linear regression with zero intercept of ``y`` against ``1/x``.
    """
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if np.any(xs == 0.0):
        raise ValueError("x values must be nonzero for an inverse fit")
    if xs.size != ys.size or xs.size < 1:
        raise ValueError("x and y must be non-empty and equal length")
    design = (1.0 / xs).reshape(-1, 1)
    (a,) = _solve(design, ys)
    predicted = a / xs
    return RegressionResult((float(a),), _r_squared(ys, predicted))


def multilinear_fit(columns: Sequence[Sequence[float]],
                    y: Sequence[float],
                    intercept: bool = True) -> RegressionResult:
    """Fit ``y = c0 + c1 col1 + c2 col2 + ...``.

    ``columns`` is a sequence of regressor columns.  The intercept
    coefficient comes first in the result when ``intercept`` is True.
    """
    ys = np.asarray(y, dtype=float)
    cols = [np.asarray(column, dtype=float) for column in columns]
    if not cols:
        raise ValueError("need at least one regressor column")
    if any(column.size != ys.size for column in cols):
        raise ValueError("all columns must match y in length")
    parts = ([np.ones_like(ys)] if intercept else []) + cols
    design = np.column_stack(parts)
    if ys.size < design.shape[1]:
        raise ValueError("not enough points for the requested fit")
    coefficients = _solve(design, ys)
    predicted = design @ coefficients
    return RegressionResult(tuple(float(c) for c in coefficients),
                            _r_squared(ys, predicted))
