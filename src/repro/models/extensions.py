"""Beyond-paper extension: wire-aware slew propagation.

The paper's output-slew model is characterized with lumped capacitive
loads, so the slew it propagates to the next stage is the slew at the
*driver output*.  On a long resistive segment the waveform disperses,
and the slew at the far end — what the next repeater actually sees —
is worse.  The classic correction (PERI: "slew = sqrt(step-response
slew^2 + driver slew^2)") combines the gate slew with the wire's own
step-response transition time:

    s_far = sqrt( s_gate^2 + (ln 9 * t_wire)^2 )

where ``t_wire`` is the Elmore time constant of the segment seen from
the driver output (``ln 9`` converts a single-pole time constant to a
10-90 style transition, rescaled to this library's full-swing slew
convention).

:class:`SlewAwareInterconnectModel` drops in anywhere the proposed
model is used; the ablation benchmark measures how much the correction
improves the predicted *output slew* (delay is barely affected because
stage delays converge to the same periodic steady state).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.models.interconnect import BufferedInterconnectModel
from repro.models.wire import effective_load_capacitance, wire_delay

#: Single-pole time constant -> full-swing-equivalent slew factor.
#: ln(9) maps tau to a 10-90 transition; the 20-80/0.6 convention used
#: by the waveform measurements is numerically close (ln(4)/0.6 ~ 2.31
#: vs ln(9) ~ 2.20); ln(9) is the standard PERI constant.
SLEW_TAU_FACTOR = math.log(9.0)


@dataclass(frozen=True)
class SlewAwareInterconnectModel(BufferedInterconnectModel):
    """The proposed model plus PERI-style wire slew degradation."""

    def wire_slew(self, segment_length: float, next_cap: float) -> float:
        """Step-response transition time of one wire segment (seconds)."""
        config = self.config
        r_wire = config.resistance_per_meter() * segment_length
        c_wire = effective_load_capacitance(config, segment_length,
                                            next_cap)
        # Elmore time constant of the distributed segment with its load.
        tau = r_wire * (0.5 * (c_wire - next_cap) + next_cap)
        return SLEW_TAU_FACTOR * tau

    def stage_delay(self, size: float, input_slew: float,
                    segment_length: float, next_cap: float,
                    rising_output: bool) -> Tuple[float, float]:
        """(delay, far-end slew), both in seconds, of one stage with
        slew degradation; ``size`` is the dimensionless repeater
        multiple, ``segment_length`` meters, ``next_cap`` farads."""
        repeater = self.repeater_model()
        load = effective_load_capacitance(self.config, segment_length,
                                          next_cap)
        d_repeater = repeater.delay(size, input_slew, load,
                                    rising_output)
        d_wire = wire_delay(self.config, segment_length, next_cap)
        gate_slew = repeater.output_slew(size, input_slew, load,
                                         rising_output)
        degraded = math.hypot(gate_slew,
                              self.wire_slew(segment_length, next_cap))
        return d_repeater + d_wire, degraded

    def staggered(self) -> "SlewAwareInterconnectModel":
        return SlewAwareInterconnectModel(
            tech=self.tech,
            calibration=self.calibration,
            config=self.config.staggered(),
            activity_factor=self.activity_factor,
        )
