"""End-to-end buffered-interconnect evaluation (the proposed model).

A buffered interconnect is a chain of repeater stages, each a repeater
driving one wire segment.  The total delay is the sum over stages of

    ``d_stage = d_r(s_i, c_l) + d_w``

where the repeater load ``c_l`` folds in the segment's ground
capacitance, its Miller-amplified lateral capacitance and the next
repeater's input capacitance, and ``d_w`` is the distributed wire term
of :mod:`repro.models.wire`.  The output slew of each stage, computed
with the calibrated slew model, becomes the next stage's input slew —
this slew propagation is precisely what the classic models skip and a
key reason the proposed model tracks sign-off (Section III-A).

Power and area come from :mod:`repro.models.power` and
:mod:`repro.models.area`; the same object therefore supplies every
metric the buffering optimizer and the NoC synthesizer need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.models.area import repeater_area, wire_area
from repro.models.calibration import CalibratedTechnology
from repro.models.power import dynamic_power, repeater_leakage_power
from repro.models.repeater import RepeaterModel
from repro.models.wire import (
    effective_load_capacitance,
    switched_wire_capacitance,
    wire_delay,
)
from repro.tech.design_styles import WireConfiguration
from repro.tech.parameters import TechnologyParameters


@dataclass(frozen=True)
class InterconnectEstimate:
    """Every metric of one buffered-interconnect configuration.

    Delays/slews in seconds, powers in watts (per bit unless a bus
    width was given), areas in m^2.
    """

    delay: float
    output_slew: float
    stage_delays: Tuple[float, ...]
    dynamic_power: float
    leakage_power: float
    repeater_area: float
    wire_area: float
    num_repeaters: int
    repeater_size: float
    length: float
    bus_width: int

    @property
    def total_power(self) -> float:
        """Dynamic plus leakage power, in watts."""
        return self.dynamic_power + self.leakage_power

    @property
    def total_area(self) -> float:
        """Repeater plus wire area, in square meters."""
        return self.repeater_area + self.wire_area


@dataclass(frozen=True)
class BufferedInterconnectModel:
    """The proposed predictive model, bound to one technology node.

    ``activity_factor`` is the fraction of clock cycles the wire
    toggles; the NoC experiments derive it per link from flow bandwidth.
    """

    tech: TechnologyParameters
    calibration: CalibratedTechnology
    config: WireConfiguration
    activity_factor: float = 0.15

    def repeater_model(self) -> RepeaterModel:
        return RepeaterModel(tech=self.tech, calibration=self.calibration)

    # -- stage-level ----------------------------------------------------

    def stage_delay(self, size: float, input_slew: float,
                    segment_length: float, next_cap: float,
                    rising_output: bool) -> Tuple[float, float]:
        """(delay, output slew), both in seconds, of one repeater
        stage; ``size`` is the dimensionless repeater multiple,
        ``segment_length`` meters, ``next_cap`` farads."""
        repeater = self.repeater_model()
        load = effective_load_capacitance(
            self.config, segment_length, next_cap)
        d_repeater = repeater.delay(size, input_slew, load, rising_output)
        d_wire = wire_delay(self.config, segment_length, next_cap)
        slew_out = repeater.output_slew(size, input_slew, load,
                                        rising_output)
        return d_repeater + d_wire, slew_out

    # -- line-level -----------------------------------------------------

    def evaluate(
        self,
        length: float,
        num_repeaters: int,
        repeater_size: float,
        input_slew: float,
        bus_width: int = 1,
        receiver_cap: Optional[float] = None,
    ) -> InterconnectEstimate:
        """Evaluate a uniformly buffered line of ``length`` meters.

        ``receiver_cap`` defaults to the input capacitance of a
        repeater of the same size (matching the golden testbench).
        Powers and areas scale with ``bus_width``.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        if num_repeaters < 1:
            raise ValueError("need at least one repeater")

        repeater = self.repeater_model()
        segment = length / num_repeaters
        input_cap = repeater.input_capacitance(repeater_size)
        if receiver_cap is None:
            receiver_cap = input_cap

        stage_delays: List[float] = []
        slew = input_slew
        rising = True
        inverting = self.calibration.kind.inverting
        for stage in range(num_repeaters):
            next_cap = (input_cap if stage + 1 < num_repeaters
                        else receiver_cap)
            delay, slew = self.stage_delay(
                repeater_size, slew, segment, next_cap, rising)
            stage_delays.append(delay)
            if inverting:
                rising = not rising

        # Power: every stage switches the wire's once-counted lateral
        # capacitance plus ground capacitance plus the downstream gate.
        switched = (switched_wire_capacitance(self.config, length)
                    + num_repeaters * input_cap)
        p_dynamic = bus_width * dynamic_power(
            switched, self.tech.vdd, self.tech.clock_frequency,
            self.activity_factor)
        p_leak = bus_width * num_repeaters * repeater_leakage_power(
            self.tech, self.calibration, repeater_size)

        a_repeaters = bus_width * num_repeaters * repeater_area(
            self.tech, self.calibration, repeater_size)
        a_wire = wire_area(self.config, length, bus_width)

        return InterconnectEstimate(
            delay=sum(stage_delays),
            output_slew=slew,
            stage_delays=tuple(stage_delays),
            dynamic_power=p_dynamic,
            leakage_power=p_leak,
            repeater_area=a_repeaters,
            wire_area=a_wire,
            num_repeaters=num_repeaters,
            repeater_size=repeater_size,
            length=length,
            bus_width=bus_width,
        )

    def staggered(self) -> "BufferedInterconnectModel":
        """The same model with staggered repeater insertion (Miller 0)."""
        return BufferedInterconnectModel(
            tech=self.tech,
            calibration=self.calibration,
            config=self.config.staggered(),
            activity_factor=self.activity_factor,
        )
