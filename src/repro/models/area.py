"""Area models (Section III-C).

Two repeater-area paths, exactly as the paper describes:

* **Regression** — ``a_r = f0 + f1 * w_n`` fitted against characterized
  cell areas (what you do when a library exists).
* **Predictive** — for future technologies with no library: fingers
  ``N_f = (w_p + w_n) / (h_row - 4 p_contact)``, cell width
  ``(N_f + 1) * p_contact``, area ``h_row * w_cell`` — all three inputs
  (feature size, contact pitch, row height) are available early in
  process development.

Wire area: ``a_w = n * (w_w + s_w) + s_w`` for an ``n``-bit bus with
wire width ``w_w`` and spacing ``s_w`` after the design style is
applied, per unit length.
"""

from __future__ import annotations

import math

import numpy as np

from repro.models.calibration import CalibratedTechnology
from repro.tech.design_styles import DesignStyle, WireConfiguration
from repro.tech.parameters import TechnologyParameters


def regression_repeater_area(calibration: CalibratedTechnology,
                             wn: float) -> float:
    """Repeater area (m^2) from the fitted linear model."""
    f0, f1 = calibration.area
    return f0 + f1 * wn


def predictive_repeater_area(tech: TechnologyParameters, size: float
                             ) -> float:
    """Repeater area (m^2) from the finger-count layout model."""
    wn, wp = tech.inverter_widths(size)
    usable_height = tech.row_height - 4.0 * tech.contact_pitch
    if usable_height <= 0:
        raise ValueError("row height too small for the contact pitch")
    fingers = max(math.ceil((wn + wp) / usable_height), 1)
    cell_width = (fingers + 1) * tech.contact_pitch
    return tech.row_height * cell_width


def repeater_area(tech: TechnologyParameters,
                  calibration: "CalibratedTechnology | None",
                  size: float) -> float:
    """Repeater area (m^2): regression when calibrated, else predictive."""
    if calibration is not None:
        wn, _ = tech.inverter_widths(size)
        return regression_repeater_area(calibration, wn)
    return predictive_repeater_area(tech, size)


def wire_area(config: WireConfiguration, length: float,
              bus_width: int = 1) -> float:
    """Routing area (m^2) consumed by a bus of ``bus_width`` bits.

    ``a_w = n * (w_w + s_w) + s_w`` per unit length, with the signal
    pitch doubled for shielded design styles (the shield tracks are
    part of the cost).
    """
    if bus_width < 1:
        raise ValueError("bus_width must be at least 1")
    # np.any so the batched kernels can pass per-lane length arrays
    # straight through instead of hoisting a unit-length evaluation.
    if np.any(np.asarray(length) < 0):
        raise ValueError("length must be non-negative")
    if config.style is DesignStyle.SHIELDED:
        pitch = config.signal_pitch()
        cross_width = bus_width * pitch + config.layer.spacing
    else:
        cross_width = (bus_width * (config.layer.width
                                    + config.layer.spacing)
                       + config.layer.spacing)
    return cross_width * length
