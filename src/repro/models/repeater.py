"""Repeater delay / output-slew / input-capacitance model (Section III-A).

The model is fully determined by a
:class:`~repro.models.calibration.CalibratedTechnology` bundle:

* ``d_r = i(s_i) + r_d(s_i, w_r) * c_l`` with the quadratic intrinsic
  delay and the slew- and size-dependent drive resistance;
* ``s_o = c0 + c1 * s_i / w_r + c2 * c_l`` for the output slew;
* ``c_i = gamma * (w_p + w_n)`` for the input capacitance.

``w_r`` is the pMOS width for rising output transitions and the nMOS
width for falling ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.characterization.cells import BUFFER_STAGE_RATIO, RepeaterKind
from repro.models.calibration import CalibratedTechnology
from repro.tech.parameters import TechnologyParameters


@dataclass(frozen=True)
class RepeaterModel:
    """Closed-form repeater model bound to one technology calibration."""

    tech: TechnologyParameters
    calibration: CalibratedTechnology

    def __post_init__(self) -> None:
        if self.calibration.tech_name.split("-")[0] not in self.tech.name:
            raise ValueError(
                f"calibration for {self.calibration.tech_name!r} does not "
                f"match technology {self.tech.name!r}")

    # -- geometry helpers --------------------------------------------------

    def widths(self, size: float) -> "tuple[float, float]":
        """(wn, wp) of the output stage, meters."""
        return self.tech.inverter_widths(size)

    def transition_width(self, size: float, rising_output: bool) -> float:
        """The ``w_r`` of the model in meters: pMOS width for rise,
        nMOS for fall; ``size`` is the dimensionless multiple."""
        wn, wp = self.widths(size)
        return wp if rising_output else wn

    # -- the three model equations ------------------------------------------

    def delay(self, size: float, input_slew: float, load_cap: float,
              rising_output: bool = True) -> float:
        """Repeater delay in seconds."""
        direction = self.calibration.direction(rising_output)
        wr = self.transition_width(size, rising_output)
        return direction.delay(input_slew, wr, load_cap)

    def output_slew(self, size: float, input_slew: float, load_cap: float,
                    rising_output: bool = True) -> float:
        """Output transition time in seconds."""
        direction = self.calibration.direction(rising_output)
        wr = self.transition_width(size, rising_output)
        return direction.output_slew(load_cap, input_slew, wr)

    def input_capacitance(self, size: float) -> float:
        """Input capacitance in farads (``gamma * (w_p + w_n)``).

        For buffers the input pin connects to the (smaller) first-stage
        inverter.
        """
        if self.calibration.kind is RepeaterKind.BUFFER:
            first_size = max(size / BUFFER_STAGE_RATIO, 1.0)
            wn, wp = self.tech.inverter_widths(first_size)
        else:
            wn, wp = self.widths(size)
        return self.calibration.input_cap_gamma * (wn + wp)

    def drive_resistance(self, size: float, input_slew: float,
                         rising_output: bool = True) -> float:
        """Effective drive resistance in ohms at the given input slew."""
        direction = self.calibration.direction(rising_output)
        wr = self.transition_width(size, rising_output)
        return direction.drive_resistance(input_slew, wr)

    # -- direction-averaged conveniences ------------------------------------

    def average_delay(self, size: float, input_slew: float,
                      load_cap: float) -> float:
        """Mean of the rise and fall delays in seconds (the usual STA
        summary); ``input_slew`` seconds, ``load_cap`` farads."""
        return 0.5 * (self.delay(size, input_slew, load_cap, True)
                      + self.delay(size, input_slew, load_cap, False))

    def worst_delay(self, size: float, input_slew: float,
                    load_cap: float) -> float:
        """Max of the rise and fall delays, in seconds."""
        return max(self.delay(size, input_slew, load_cap, True),
                   self.delay(size, input_slew, load_cap, False))
