"""Crosstalk-aware wire-delay model (Section III-B).

Starts from the Pamunuwa et al. form

    ``d_w = r_w (0.4 c_g + (lambda/2) c_c + 0.7 c_i)``

where ``lambda`` captures neighbour switching (1.51 for the worst case
in the paper's notation), and enhances the wire resistance ``r_w`` with
the width-dependent resistivity corrections of
:mod:`repro.tech.resistivity` (electron scattering + barrier
thickness), which is what distinguishes the proposed model's wire part
from the classic one.

The mapping between the paper's ``lambda`` and the Miller factor ``m``
used by :class:`~repro.tech.design_styles.WireConfiguration` is
``lambda / 2 = 0.4 * m``: the worst-case ``lambda = 1.51`` corresponds
to ``m ~ 1.9``, and staggered repeater insertion (Section III-D) sets
``m = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.design_styles import WireConfiguration

#: Elmore coefficient of the distributed ground/coupling capacitance.
WIRE_CAP_COEFFICIENT = 0.4

#: Elmore coefficient of the lumped far-end load.
LOAD_COEFFICIENT = 0.7


@dataclass(frozen=True)
class WireDelayComponents:
    """Breakdown of one wire segment's delay contribution."""

    ground_term: float
    coupling_term: float
    load_term: float

    @property
    def total(self) -> float:
        """Sum of the three delay terms, in seconds."""
        return self.ground_term + self.coupling_term + self.load_term


def wire_delay_components(
    config: WireConfiguration,
    length: float,
    load_cap: float,
    miller_factor: "float | None" = None,
) -> WireDelayComponents:
    """Per-term wire delay of one segment of ``length`` meters.

    ``load_cap`` is the capacitance at the far end (the next repeater's
    input capacitance).  ``miller_factor`` defaults to the
    configuration's delay Miller factor.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    if miller_factor is None:
        miller_factor = config.delay_miller
    r_wire = config.resistance_per_meter() * length
    c_ground = config.ground_capacitance_per_meter() * length
    c_coupling = config.coupling_capacitance_per_meter() * length
    return WireDelayComponents(
        ground_term=r_wire * WIRE_CAP_COEFFICIENT * c_ground,
        coupling_term=(r_wire * WIRE_CAP_COEFFICIENT * miller_factor
                       * c_coupling),
        load_term=r_wire * LOAD_COEFFICIENT * load_cap,
    )


def wire_delay(
    config: WireConfiguration,
    length: float,
    load_cap: float,
    miller_factor: "float | None" = None,
) -> float:
    """Total wire delay ``d_w`` of one segment, in seconds."""
    return wire_delay_components(config, length, load_cap,
                                 miller_factor).total


def switched_wire_capacitance(config: WireConfiguration,
                              length: float) -> float:
    """Capacitance (F) charged by the driver per transition.

    Uses the configuration's *power* Miller factor: a neighbour that
    holds still contributes its full lateral capacitance once (factor
    1); staggering changes the delay factor but not this one.
    """
    return config.switched_capacitance_per_meter() * length


def effective_load_capacitance(
    config: WireConfiguration,
    length: float,
    next_input_cap: float,
    miller_factor: "float | None" = None,
) -> float:
    """Load capacitance ``c_l`` presented to the driving repeater.

    The sum of the wire's ground capacitance, its Miller-amplified
    lateral capacitance, and the next stage's input capacitance — the
    ``c_l`` fed into the repeater-delay model for a buffered line stage.
    """
    if miller_factor is None:
        miller_factor = config.delay_miller
    c_ground = config.ground_capacitance_per_meter() * length
    c_coupling = config.coupling_capacitance_per_meter() * length
    return c_ground + miller_factor * c_coupling + next_input_cap
