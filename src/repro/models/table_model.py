"""NLDM table-lookup interconnect model.

Production static timers do not use closed forms: they interpolate the
characterized delay/slew tables directly.  This model does the same —
bilinear interpolation of the library's NLDM tables for the repeater
part, the corrected wire model for the wire part — and serves as the
accuracy ceiling the paper's closed forms are traded against: the
closed forms compress the tables into a handful of coefficients and
extend smoothly to *any* repeater size, at some accuracy cost this
model makes measurable.

Repeater sizes snap to the nearest characterized size (tables exist
only on the characterized grid — exactly the restriction real cell
libraries impose).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.characterization.harness import LibraryCharacterization
from repro.models.area import wire_area
from repro.models.interconnect import InterconnectEstimate
from repro.models.power import dynamic_power
from repro.models.wire import (
    effective_load_capacitance,
    switched_wire_capacitance,
    wire_delay,
)
from repro.tech.design_styles import WireConfiguration


@dataclass(frozen=True)
class TableInterconnectModel:
    """Buffered-interconnect evaluation straight from NLDM tables."""

    library: LibraryCharacterization
    config: WireConfiguration
    activity_factor: float = 0.15

    @property
    def tech(self):
        return self.library.tech

    # -- size handling ------------------------------------------------------

    def snap_size(self, size: float) -> float:
        """Nearest characterized drive strength (dimensionless
        multiple of the minimum inverter)."""
        sizes = self.library.sizes()
        return min(sizes, key=lambda s: abs(s - size))

    # -- repeater lookups -----------------------------------------------------

    def repeater_delay(self, size: float, input_slew: float,
                       load_cap: float, rising_output: bool) -> float:
        """NLDM delay in seconds; ``input_slew`` seconds,
        ``load_cap`` farads, ``size`` dimensionless."""
        cell = self.library.cell(self.snap_size(size))
        return cell.tables(rising_output).delay.lookup(input_slew,
                                                       load_cap)

    def repeater_slew(self, size: float, input_slew: float,
                      load_cap: float, rising_output: bool) -> float:
        """NLDM output slew in seconds; ``input_slew`` seconds,
        ``load_cap`` farads, ``size`` dimensionless."""
        cell = self.library.cell(self.snap_size(size))
        return cell.tables(rising_output).output_slew.lookup(
            input_slew, load_cap)

    def input_capacitance(self, size: float) -> float:
        """Input pin capacitance in farads at the snapped size."""
        return self.library.cell(self.snap_size(size)).input_capacitance

    # -- line evaluation ------------------------------------------------------

    def evaluate(
        self,
        length: float,
        num_repeaters: int,
        repeater_size: float,
        input_slew: float,
        bus_width: int = 1,
        receiver_cap: Optional[float] = None,
    ) -> InterconnectEstimate:
        """Same contract as the closed-form models: ``length`` in
        meters, ``input_slew`` in seconds, ``repeater_size`` a
        dimensionless multiple."""
        if length <= 0:
            raise ValueError("length must be positive")
        if num_repeaters < 1:
            raise ValueError("need at least one repeater")

        size = self.snap_size(repeater_size)
        cell = self.library.cell(size)
        tech = self.tech
        segment = length / num_repeaters
        input_cap = cell.input_capacitance
        if receiver_cap is None:
            receiver_cap = input_cap

        stage_delays: List[float] = []
        slew = input_slew
        rising = True
        for stage in range(num_repeaters):
            next_cap = (input_cap if stage + 1 < num_repeaters
                        else receiver_cap)
            load = effective_load_capacitance(self.config, segment,
                                              next_cap)
            delay = (self.repeater_delay(size, slew, load, rising)
                     + wire_delay(self.config, segment, next_cap))
            slew = self.repeater_slew(size, slew, load, rising)
            stage_delays.append(delay)
            rising = not rising

        switched = (switched_wire_capacitance(self.config, length)
                    + num_repeaters * input_cap)
        p_dynamic = bus_width * dynamic_power(
            switched, tech.vdd, tech.clock_frequency,
            self.activity_factor)
        p_leak = bus_width * num_repeaters * cell.leakage_power
        a_repeaters = bus_width * num_repeaters * cell.area
        a_wire = wire_area(self.config, length, bus_width)

        return InterconnectEstimate(
            delay=sum(stage_delays),
            output_slew=slew,
            stage_delays=tuple(stage_delays),
            dynamic_power=p_dynamic,
            leakage_power=p_leak,
            repeater_area=a_repeaters,
            wire_area=a_wire,
            num_repeaters=num_repeaters,
            repeater_size=size,
            length=length,
            bus_width=bus_width,
        )
