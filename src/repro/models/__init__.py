"""The paper's predictive buffered-interconnect models.

This package is the primary contribution being reproduced:

* :mod:`repro.models.regression` — least-squares fitting utilities.
* :mod:`repro.models.calibration` — fits the Table I coefficients from
  characterization data and bundles them per technology node.
* :mod:`repro.models.repeater` — repeater delay / output slew / input
  capacitance model (Section III-A).
* :mod:`repro.models.wire` — enhanced crosstalk-aware wire delay model
  (Section III-B).
* :mod:`repro.models.power` — leakage + dynamic power (Section III-C).
* :mod:`repro.models.area` — repeater and wire area (Section III-C).
* :mod:`repro.models.interconnect` — end-to-end buffered-interconnect
  evaluation with slew propagation.
* :mod:`repro.models.baselines` — the Bakoglu and Pamunuwa models the
  paper compares against (Table II).
"""

from repro.models.regression import (
    RegressionResult,
    inverse_fit,
    linear_fit,
    multilinear_fit,
    quadratic_fit,
)
from repro.models.calibration import (
    CalibratedTechnology,
    DirectionCoefficients,
    OutputSlewForm,
    calibrate_technology,
    load_calibration,
)
from repro.models.repeater import RepeaterModel
from repro.models.wire import wire_delay, wire_delay_components
from repro.models.power import (
    dynamic_power,
    leakage_power_from_coefficients,
)
from repro.models.area import (
    predictive_repeater_area,
    regression_repeater_area,
    wire_area,
)
from repro.models.interconnect import (
    BufferedInterconnectModel,
    InterconnectEstimate,
)
from repro.models.table_model import TableInterconnectModel
from repro.models.baselines.bakoglu import BakogluModel
from repro.models.baselines.pamunuwa import PamunuwaModel

__all__ = [
    "RegressionResult",
    "inverse_fit",
    "linear_fit",
    "multilinear_fit",
    "quadratic_fit",
    "CalibratedTechnology",
    "DirectionCoefficients",
    "OutputSlewForm",
    "calibrate_technology",
    "load_calibration",
    "RepeaterModel",
    "wire_delay",
    "wire_delay_components",
    "dynamic_power",
    "leakage_power_from_coefficients",
    "predictive_repeater_area",
    "regression_repeater_area",
    "wire_area",
    "BufferedInterconnectModel",
    "InterconnectEstimate",
    "TableInterconnectModel",
    "BakogluModel",
    "PamunuwaModel",
]
