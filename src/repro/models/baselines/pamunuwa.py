"""The Pamunuwa et al. crosstalk-aware baseline model.

Relative to Bakoglu, this model adds the coupling-aware wire delay term

    ``d_w = r_w (0.4 c_g + (lambda/2) c_c + 0.7 c_i)``

with the worst-case switching coefficient, and counts lateral
capacitance in the driver load.  What it still lacks — and what
separates it from the proposed model — is:

* any input-slew dependence of the drive resistance or intrinsic delay
  (it uses the same characteristic ``vdd / i_dsat`` resistance), and
* the width-dependent resistivity corrections (electron scattering and
  barrier thickness), so its wire resistance is optimistic in
  nanometer nodes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.models.area import wire_area
from repro.models.baselines.bakoglu import (
    GATE_COEFFICIENT,
    WIRE_COEFFICIENT,
    WIRE_LOAD_COEFFICIENT,
    BakogluModel,
)
from repro.models.interconnect import InterconnectEstimate
from repro.models.power import dynamic_power
from repro.tech.design_styles import WireConfiguration
from repro.tech.parameters import TechnologyParameters


@dataclass(frozen=True)
class PamunuwaModel:
    """Pamunuwa model bound to one technology node and wire layer."""

    tech: TechnologyParameters
    config: WireConfiguration
    activity_factor: float = 0.15

    def _gate_model(self) -> BakogluModel:
        """The gate-level pieces are shared with the Bakoglu model."""
        return BakogluModel(tech=self.tech, config=self.config,
                            activity_factor=self.activity_factor)

    def _optimistic_config(self) -> WireConfiguration:
        """Bulk resistivity, no barrier — pre-nanometer wire physics."""
        return dataclasses.replace(
            self.config, include_scattering=False, include_barrier=False)

    # -- element models ---------------------------------------------------

    def drive_resistance(self, size: float) -> float:
        """Drive resistance in ohms of a repeater of dimensionless
        ``size`` (multiple of the minimum inverter)."""
        return self._gate_model().drive_resistance(size)

    def input_capacitance(self, size: float) -> float:
        """Gate capacitance in farads of a repeater of dimensionless
        ``size``."""
        return self._gate_model().input_capacitance(size)

    def wire_resistance(self, length: float) -> float:
        """Resistance in ohms of ``length`` meters of wire."""
        return self._optimistic_config().resistance_per_meter() * length

    def wire_ground_cap(self, length: float) -> float:
        """Ground capacitance in farads of ``length`` meters of wire."""
        return (self._optimistic_config().ground_capacitance_per_meter()
                * length)

    def wire_coupling_cap(self, length: float) -> float:
        """Coupling capacitance in farads of ``length`` meters of wire."""
        return (self._optimistic_config().coupling_capacitance_per_meter()
                * length)

    # -- line evaluation ------------------------------------------------------

    def stage_delay(self, size: float, segment_length: float,
                    next_cap: float) -> float:
        """Delay in seconds of one stage with the crosstalk-aware
        wire term; ``segment_length`` in meters, ``next_cap`` in
        farads."""
        gate = self._gate_model()
        miller = self.config.delay_miller
        r_d = self.drive_resistance(size)
        r_w = self.wire_resistance(segment_length)
        c_g = self.wire_ground_cap(segment_length)
        c_c = self.wire_coupling_cap(segment_length)
        c_self = gate.self_capacitance(size)
        load = c_self + c_g + miller * c_c + next_cap
        gate_term = GATE_COEFFICIENT * r_d * load
        wire_term = r_w * (WIRE_COEFFICIENT * c_g
                           + WIRE_COEFFICIENT * miller * c_c
                           + WIRE_LOAD_COEFFICIENT * next_cap)
        return gate_term + wire_term

    def evaluate(
        self,
        length: float,
        num_repeaters: int,
        repeater_size: float,
        input_slew: float = 0.0,
        bus_width: int = 1,
        receiver_cap: Optional[float] = None,
    ) -> InterconnectEstimate:
        """Evaluate a buffered line of ``length`` meters
        (``input_slew``, in seconds, is ignored — the model has no
        slew dependence)."""
        if length <= 0:
            raise ValueError("length must be positive")
        if num_repeaters < 1:
            raise ValueError("need at least one repeater")

        gate = self._gate_model()
        segment = length / num_repeaters
        input_cap = self.input_capacitance(repeater_size)
        if receiver_cap is None:
            receiver_cap = input_cap

        stage_delays = []
        for stage in range(num_repeaters):
            next_cap = (input_cap if stage + 1 < num_repeaters
                        else receiver_cap)
            stage_delays.append(
                self.stage_delay(repeater_size, segment, next_cap))

        # Power counts the lateral capacitance once (no Miller for
        # average power) — the same accounting as the proposed model,
        # but on the optimistic wire parasitics.
        switched = (self.wire_ground_cap(length)
                    + self.wire_coupling_cap(length)
                    + num_repeaters * input_cap)
        p_dynamic = bus_width * dynamic_power(
            switched, self.tech.vdd, self.tech.clock_frequency,
            self.activity_factor)
        p_leak = (bus_width * num_repeaters
                  * gate.repeater_leakage(repeater_size))
        a_repeaters = (bus_width * num_repeaters
                       * gate.repeater_area(repeater_size))
        a_wire = wire_area(self.config, length, bus_width)

        return InterconnectEstimate(
            delay=sum(stage_delays),
            output_slew=0.0,
            stage_delays=tuple(stage_delays),
            dynamic_power=p_dynamic,
            leakage_power=p_leak,
            repeater_area=a_repeaters,
            wire_area=a_wire,
            num_repeaters=num_repeaters,
            repeater_size=repeater_size,
            length=length,
            bus_width=bus_width,
        )
