"""Classic interconnect models the paper compares against (Table II).

Both baselines expose the same ``evaluate(...)`` interface as
:class:`repro.models.interconnect.BufferedInterconnectModel`, so the
accuracy experiments and the NoC synthesizer can swap models freely.

* :class:`~repro.models.baselines.bakoglu.BakogluModel` — the classic
  Bakoglu formulation: slew-independent characteristic drive
  resistance, **no coupling capacitance**, bulk copper resistivity, and
  a simplistic transistor-active-area estimate.  This is the model the
  original COSI-OCC used.
* :class:`~repro.models.baselines.pamunuwa.PamunuwaModel` — adds the
  crosstalk-aware wire term of Pamunuwa et al., but keeps the
  slew-independent drive resistance and bulk resistivity.
"""

from repro.models.baselines.bakoglu import BakogluModel
from repro.models.baselines.pamunuwa import PamunuwaModel

__all__ = ["BakogluModel", "PamunuwaModel"]
