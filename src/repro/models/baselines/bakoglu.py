"""The classic Bakoglu buffered-interconnect model.

This is the "original" model of Tables II and III: the formulation used
by early communication-synthesis tools (and by COSI-OCC before the
paper's models were integrated).  Its simplifications, each of which the
proposed model removes, are:

* drive resistance is the slew-independent characteristic resistance
  ``r_d = vdd / i_dsat`` (inversely proportional to size only);
* intrinsic delay is the constant self-loading term — no input-slew
  dependence at all;
* the wire model uses **ground capacitance only** — lateral coupling is
  neglected for both delay and power;
* wire resistance assumes bulk copper resistivity (no scattering, no
  barrier);
* repeater area is the raw transistor active area — the "simplistic
  assumption on the area occupation" the paper calls out.

The classic delay-optimal repeater count and size closed forms are also
provided; they are what the original flow uses to buffer a line.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.models.area import wire_area
from repro.models.interconnect import InterconnectEstimate
from repro.models.power import dynamic_power
from repro.tech.design_styles import WireConfiguration
from repro.tech.parameters import TechnologyParameters

#: Elmore switching coefficient of the lumped gate RC stage.
GATE_COEFFICIENT = 0.69

#: Distributed-wire Elmore coefficient.
WIRE_COEFFICIENT = 0.4

#: Wire-resistance-into-load coefficient.
WIRE_LOAD_COEFFICIENT = 0.7


@dataclass(frozen=True)
class BakogluModel:
    """Bakoglu model bound to one technology node and wire layer."""

    tech: TechnologyParameters
    config: WireConfiguration
    activity_factor: float = 0.15

    def _optimistic_config(self) -> WireConfiguration:
        """The wire view this model takes: bulk resistivity, no barrier."""
        return dataclasses.replace(
            self.config, include_scattering=False, include_barrier=False)

    # -- element models ---------------------------------------------------

    def drive_resistance(self, size: float) -> float:
        """Characteristic resistance ``vdd / i_dsat`` in ohms.

        Averaged over the pull-down (nMOS) and pull-up (pMOS) networks.
        """
        wn, wp = self.tech.inverter_widths(size)
        vdd = self.tech.vdd
        i_n = self.tech.nmos.saturation_current(wn, vdd - self.tech.nmos.vth)
        i_p = self.tech.pmos.saturation_current(wp, vdd - self.tech.pmos.vth)
        return 0.5 * (vdd / i_n + vdd / i_p)

    def input_capacitance(self, size: float) -> float:
        """Gate capacitance in farads of a repeater of dimensionless
        ``size`` (multiple of the minimum inverter), from device data.
        """
        wn, wp = self.tech.inverter_widths(size)
        return self.tech.nmos.c_gate * wn + self.tech.pmos.c_gate * wp

    def self_capacitance(self, size: float) -> float:
        """Drain (self-loading) capacitance in farads of a repeater
        of dimensionless ``size``."""
        wn, wp = self.tech.inverter_widths(size)
        return self.tech.nmos.c_drain * wn + self.tech.pmos.c_drain * wp

    def wire_resistance(self, length: float) -> float:
        """Resistance in ohms of ``length`` meters of wire."""
        return self._optimistic_config().resistance_per_meter() * length

    def wire_capacitance(self, length: float) -> float:
        """Capacitance in farads of ``length`` meters of wire —
        ground capacitance only, coupling is neglected."""
        return (self._optimistic_config().ground_capacitance_per_meter()
                * length)

    def repeater_area(self, size: float) -> float:
        """Raw transistor gate area in square meters (simplistic).

        Real cells pay for diffusion, contacts, and finger pitch; the
        original model counts only ``width x gate length``, which is
        why the paper finds its area figures wildly optimistic.
        """
        wn, wp = self.tech.inverter_widths(size)
        return (wn + wp) * self.tech.feature_size

    def repeater_leakage(self, size: float) -> float:
        """Average leakage in watts from device data (Sec. III-C)."""
        wn, wp = self.tech.inverter_widths(size)
        vdd = self.tech.vdd
        return 0.5 * (self.tech.nmos.leakage_power(wn, vdd)
                      + self.tech.pmos.leakage_power(wp, vdd))

    # -- line evaluation ------------------------------------------------------

    def stage_delay(self, size: float, segment_length: float,
                    next_cap: float) -> float:
        """Elmore delay in seconds of one repeater stage, coupling
        neglected; ``segment_length`` in meters, ``next_cap`` in
        farads."""
        r_d = self.drive_resistance(size)
        r_w = self.wire_resistance(segment_length)
        c_w = self.wire_capacitance(segment_length)
        c_self = self.self_capacitance(size)
        gate = GATE_COEFFICIENT * r_d * (c_self + c_w + next_cap)
        wire = r_w * (WIRE_COEFFICIENT * c_w
                      + WIRE_LOAD_COEFFICIENT * next_cap)
        return gate + wire

    def evaluate(
        self,
        length: float,
        num_repeaters: int,
        repeater_size: float,
        input_slew: float = 0.0,
        bus_width: int = 1,
        receiver_cap: Optional[float] = None,
    ) -> InterconnectEstimate:
        """Evaluate a buffered line of ``length`` meters;
        ``input_slew`` (seconds) is accepted for interface
        compatibility but ignored (the model has no slew
        dependence)."""
        if length <= 0:
            raise ValueError("length must be positive")
        if num_repeaters < 1:
            raise ValueError("need at least one repeater")

        segment = length / num_repeaters
        input_cap = self.input_capacitance(repeater_size)
        if receiver_cap is None:
            receiver_cap = input_cap

        stage_delays = []
        for stage in range(num_repeaters):
            next_cap = (input_cap if stage + 1 < num_repeaters
                        else receiver_cap)
            stage_delays.append(
                self.stage_delay(repeater_size, segment, next_cap))

        switched = (self.wire_capacitance(length)
                    + num_repeaters * input_cap)
        p_dynamic = bus_width * dynamic_power(
            switched, self.tech.vdd, self.tech.clock_frequency,
            self.activity_factor)
        p_leak = (bus_width * num_repeaters
                  * self.repeater_leakage(repeater_size))
        a_repeaters = (bus_width * num_repeaters
                       * self.repeater_area(repeater_size))
        a_wire = wire_area(self.config, length, bus_width)

        return InterconnectEstimate(
            delay=sum(stage_delays),
            output_slew=0.0,
            stage_delays=tuple(stage_delays),
            dynamic_power=p_dynamic,
            leakage_power=p_leak,
            repeater_area=a_repeaters,
            wire_area=a_wire,
            num_repeaters=num_repeaters,
            repeater_size=repeater_size,
            length=length,
            bus_width=bus_width,
        )

    # -- classic closed-form buffering ---------------------------------------

    def delay_optimal_buffering(self, length: float
                                ) -> Tuple[int, float]:
        """Classic delay-optimal repeater count and size.

        ``k = sqrt(0.4 R_w C_w / (0.7 R_0 C_0))`` repeaters of size
        ``h = sqrt(R_0 C_w / (R_w C_0))`` — the Bakoglu formulas, using
        this model's (optimistic) wire view.  The paper notes these
        sizes are "never used in practice"; the buffering optimizer
        exists precisely to do better.
        """
        r_total = self.wire_resistance(length)
        c_total = self.wire_capacitance(length)
        r0 = self.drive_resistance(1.0)
        c0 = self.input_capacitance(1.0)
        count = max(1, round(math.sqrt(
            (WIRE_COEFFICIENT * r_total * c_total)
            / (GATE_COEFFICIENT * r0 * c0))))
        size = math.sqrt(r0 * c_total / (r_total * c0))
        return count, max(size, 1.0)
